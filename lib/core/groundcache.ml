(* Persistent on-disk cache of layered groundings.

   A layered grounding ({!Asp.Ground.layered}) is plain data — interned
   atom store, join indexes, ground rules, derivation edges — so it
   marshals directly. Entries are keyed by a content hash over the
   program text, the rendered base facts, and the buildcache digest:
   any change to the repo encoding, the logic program, or the pool
   lands on a different key, so a stale file can never be served (it
   is simply never looked up again). Files are written to a temp name
   and renamed into place, making concurrent writers (several serve
   workers warming up at once) safe: last rename wins and both wrote
   identical bytes for identical keys. *)

let magic = "spackml-groundcache\x01"

(* Bump whenever the marshaled shape changes ([Asp.Ground.layered] or
   anything it embeds): Marshal is not type-safe, so the version check
   is what stands between an old file and a segfault. *)
let format_version = 4

let key ~program ~pool = Chash.hash_string (program ^ "\x00" ^ pool)

let path ~dir key = Filename.concat dir ("ground-" ^ key ^ ".bin")

let mem ~dir key = Sys.file_exists (path ~dir key)

let save ?(obs = Obs.disabled) ~dir key (layered : Asp.Ground.layered) =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let file = path ~dir key in
    if Sys.file_exists file then false
    else begin
      let tmp =
        Printf.sprintf "%s.tmp.%d" file (Unix.getpid ())
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc magic;
         output_binary_int oc format_version;
         Marshal.to_channel oc layered [];
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp file;
      Obs.incr obs "groundcache.saves";
      true
    end
  with Sys_error _ | Unix.Unix_error _ -> false

let load ?(obs = Obs.disabled) ~dir key =
  let file = path ~dir key in
  match open_in_bin file with
  | exception Sys_error _ ->
    Obs.incr obs "groundcache.misses";
    None
  | ic ->
    let r =
      try
        let m = really_input_string ic (String.length magic) in
        if not (String.equal m magic) then None
        else if input_binary_int ic <> format_version then None
        else Some (Marshal.from_channel ic : Asp.Ground.layered)
      with End_of_file | Failure _ | Sys_error _ -> None
    in
    close_in_noerr ic;
    Obs.incr obs
      (match r with Some _ -> "groundcache.hits" | None -> "groundcache.misses");
    r
