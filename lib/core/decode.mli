(** Interpret the optimal stable model back into concrete specs
    (§3.3's third stage, extended with splice synthesis, §5.4).

    Reused nodes whose entire imposed sub-DAG survived intact are
    grafted verbatim from the reuse pool (their hashes must round-trip
    exactly); nodes the solver relinked — a [splice] atom replaced one
    of their dependencies, directly or transitively — are rebuilt from
    the model's attributes, marked with the [build_hash] they were
    compiled as, and shed their build-only edges, exactly like a manual
    {!Splice.splice}. *)

type splice_record = {
  sp_parent : string;  (** node whose dependency was replaced *)
  sp_old : string;  (** replaced package name *)
  sp_old_hash : string;
  sp_new : string;  (** replacing package name *)
}

type solution = {
  specs : Spec.Concrete.t list;  (** one per requested root, same order *)
  built : string list;  (** package names built from source *)
  reused : (string * string) list;  (** (package, installed hash) reused *)
  splices : splice_record list;
  model : Asp.Logic.model;
}

val decode :
  pool:Encode.reuse_pool ->
  requests:Encode.request list ->
  Asp.Logic.model ->
  (solution, string) result

val is_spliced_solution : solution -> bool
