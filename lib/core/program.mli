(** The concretizer's logic program (§5.1, §5.3, §5.4), as ASP text.

    Assembled from sections so experiments can measure each change in
    isolation: the base concretization semantics, the reuse machinery
    shared by both encodings, the [hash_attr] recovery rules of
    Fig. 3b (new encoding only), and the splice-selection logic of
    Fig. 4b (only when splicing is enabled — the feature is
    conditionally loaded, §5.4). *)

val base : string
(** Node derivation, condition machinery, virtuals/providers, version
    and variant selection, user constraints, conflicts. *)

val reuse : string
(** Reuse choice, imposition application, build/reuse objective
    plumbing — shared by both encodings. *)

val hash_attr_recovery : string
(** Fig. 3b: recover [imposed_constraint] from [hash_attr], with the
    hash and depends_on impositions deferring to splices. *)

val splice_logic : string
(** Fig. 4b: choose between imposing an original dependency and
    splicing in a compatible replacement. *)

val optimization : string
(** Objectives: minimize builds (highest priority, weight 100 as in
    §5.1.2), version preference, non-default variants, splice count. *)

val session_layer : string
(** Free choice atoms ([root_on], [req_dep], [forbid_pkg],
    [forbid_version], [forbid_variant]) that incremental solve sessions
    assume true or false per request instead of re-encoding user-request
    facts; domains come from {!Encode.encode_session}. *)

val assemble :
  ?session:bool -> encoding:Encode.encoding -> splicing:bool -> unit -> string
(** [session] (default [false]) appends {!session_layer}. *)
