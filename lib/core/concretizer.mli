(** The concretizer: Spack's dependency resolver with automatic
    splicing (§5).

    Pipeline (§3.3): compile packages + requests + reusable specs to
    ASP facts ({!Encode}), join them with the logic program
    ({!Program}), ground and solve for the optimal stable model
    ({!Asp}), and interpret the model back into concrete specs
    ({!Decode}).

    Knobs map one-to-one onto the paper's experimental axes (§6.1.4):
    the reusable-spec [encoding] (old vs hash_attr), whether automatic
    [splicing] is considered, and the set of reusable specs (the
    buildcache contents). *)

type options = {
  encoding : Encode.encoding;
  splicing : bool;
  reuse : Spec.Concrete.t list;
  mirrors : Binary.Mirror.group option;
      (** mirror layer to pull additional reusable specs from: only the
          {e currently reachable} mirrors contribute (degraded solves
          run over whatever metadata is reachable) *)
  host_os : string;
  host_target : string;
  certify : bool;
      (** record a DRUP-style proof in the SAT core so UNSAT answers
          carry an independently checkable refutation *)
  prune : bool;
      (** restrict package facts and the reusable pool to the
          dependency closure of the requested roots
          ({!Encode.closure}) before grounding — sound, and the
          difference between grounding a 5000-spec buildcache and the
          few dozen specs a request can actually reach *)
  verify : bool;
      (** independently re-validate every returned spec against the
          repo and its request with {!Verify.check_solution} (no solver
          involved); the violation count lands in
          [stats.verify_violations]. Off by default — it is an explicit
          option (not keyed off tracing being enabled) so overhead
          comparisons of the tracing layer are not polluted by
          verification cost. *)
  baseline_solver : bool;
      (** solve on {!Asp.Logic.Baseline} (the pre-arena MiniSat-style
          CDCL core) instead of the glucose-class default. Outcomes are
          interchangeable; used by the [sat-smoke] bench and
          differential tests to compare the two cores on identical
          encodings. Sessions always run the default core. *)
  ground_jobs : int;
      (** partition the grounder's phase-2 instantiation across this
          many OCaml 5 domains ({!Asp.Ground.ground}'s [jobs]); the
          ground program is byte-identical for any value. Applies to
          one-shot solves and {!Session.create}; default 1. *)
  portfolio : int;
      (** race the initial stable solve of every request across this
          many diversified SAT-solver clones (restart mode, phase
          policy, seed, inprocessing budget), exchanging low-LBD learnt
          clauses; default 1 (single solver). Results — models, costs,
          tie-breaks, proofs' verdicts — are byte-identical to a
          single-solver run under {!Asp.Logic}'s election rule; only
          wall time changes. Ignored by the baseline solver. *)
  obs : Obs.ctx;
      (** tracing context ({!Obs.disabled} by default): when enabled,
          every request emits a [concretize] span with child
          [encode]/[assemble]/[ground]/[solve]/[decode] (and [verify])
          phase spans, and the flat counters below are mirrored into
          the [Obs] metric registry *)
}

val default_options : options
(** hash_attr encoding, splicing off, no reuse, no mirrors,
    linux/x86_64 host, certification off, pruning on, verification
    off, tracing disabled. *)

type stats = {
  ground_atoms : int;
  ground_rules : int;
  fact_count : int;
  pool_total : int;  (** reusable specs before pruning *)
  pool_used : int;  (** reusable specs actually encoded *)
  sat_stats : (string * int) list;
  stable_checks : int;
  costs : (int * int) list;
  verify_violations : int option;
      (** [None] when [options.verify] was off; [Some n] = total
          violations {!Verify.check_solution} found across all
          returned specs (0 = clean) *)
  encode_seconds : float;
  ground_seconds : float;
  solve_seconds : float;
  total_seconds : float;
}

type outcome = {
  solution : Decode.solution;
  stats : stats;
}

type failure = {
  f_message : string;
  f_proof : Asp.Sat.proof_step list option;
      (** the refutation certificate, present iff the failure was an
          UNSAT answer and [options.certify] was set *)
  f_timeout : bool;
      (** the solve was preempted by an exhausted
          {!Asp.Solver_intf.budget} (deadline or conflict cap) rather
          than answered; the underlying solver/session remains
          reusable *)
}

val concretize_v :
  repo:Pkg.Repo.t ->
  ?options:options ->
  ?budget:Asp.Solver_intf.budget ->
  ?closure:(string, unit) Hashtbl.t ->
  ?attrs:(string * Obs.value) list ->
  Encode.request list ->
  (outcome, failure) result
(** Like {!concretize} but with a structured failure that carries the
    DRUP proof for certified UNSAT answers. [?attrs] are stamped on the
    root ["concretize"] span (the serve layer passes the request id
    here). [?budget] bounds the solve
    (conflict cap and/or external stop probe); exhaustion yields a
    failure with [f_timeout = true]. [?closure] supplies a precomputed
    dependency closure for pruning (see {!Encode.encode}), letting a
    resident server skip the closure walk on repeat roots. *)

val concretize :
  repo:Pkg.Repo.t ->
  ?options:options ->
  Encode.request list ->
  (outcome, string) result
(** Concretize one or more abstract requests jointly. [Error] carries
    "UNSAT" or a decode failure description. *)

val concretize_spec :
  repo:Pkg.Repo.t -> ?options:options -> string -> (outcome, string) result
(** Convenience: single request from spec syntax. *)

val pp_stats : Format.formatter -> stats -> unit

(** Incremental solve sessions: encode and ground the universe once,
    then serve many single-root requests against it by solving under
    assumptions ({!Asp.Logic.session_solve}). Learned clauses, variable
    activities, and saved phases carry over between requests, so a
    session amortizes both the ground cost and the solver's warm-up.
    Sessions return the same optimal costs as fresh solves; on cost
    ties the specific model may differ (both are optimal). *)
module Session : sig
  type t

  val create :
    repo:Pkg.Repo.t ->
    ?options:options ->
    ?closure:(string, unit) Hashtbl.t ->
    roots:string list ->
    unit ->
    (t, string) result
  (** Ground the universe for requests rooted at any of [roots]
      (deduplicated; must be known non-virtual packages). With
      [options.prune], the universe is the closure of all [roots]
      jointly; [?closure] supplies it precomputed (see
      {!Encode.encode}). *)

  val solve :
    ?budget:Asp.Solver_intf.budget ->
    ?obs:Obs.ctx ->
    ?attrs:(string * Obs.value) list ->
    t ->
    Encode.request ->
    (outcome, failure) result
  (** Serve one single-root request. [stats] report the session's
      (amortized) ground numbers, zero encode/ground seconds, and
      per-request deltas for the solver counters. [?budget] bounds this
      request's solver work; a preempted request fails with
      [f_timeout = true] and leaves the session fully reusable (the
      solve server's deadline mechanism). [?obs] overrides the
      session's context for this request's ["session.request"]/decode
      spans and published stats (request-scoped tracing); [?attrs] are
      stamped on the ["session.request"] span. *)

  val setup_seconds : t -> float
  (** One-time encode + ground + translate cost paid by [create]. *)

  val sat_stats : t -> (string * int) list
  (** Session-cumulative solver counters. *)

  val solves : t -> int

  val set_portfolio : t -> int -> unit
  (** Retune the portfolio width (initially [options.portfolio]) for
      subsequent requests; clamped to at least 1. Safe between
      requests — outcomes are width-independent (byte-identity rule),
      only wall time changes. *)
end

(** Warm delta-grounded universes: the request-independent session
    program grounded once through {!Asp.Ground.layered_create}, with
    the buildcache applied as named per-entry fact groups
    ({!Encode.pool_groups}). A buildcache swap becomes a
    {!Asp.Ground.layered_update} delta proportional to the churn
    instead of a full reground, and the grounding itself can be
    persisted to disk ({!Groundcache}) so a cold start at 20k pool
    entries loads instead of regrounding. *)
module Warm : sig
  type t

  val create :
    repo:Pkg.Repo.t ->
    ?options:options ->
    ?ground_cache:string ->
    roots:string list ->
    unit ->
    (t, string) result
  (** Ground the (never-pruned) base universe for session requests
      rooted at any of [roots], then apply [options.reuse] as the
      initial pool delta. With [?ground_cache DIR], first try to load
      the grounding keyed by (program + base facts digest, pool
      digest) — a hit skips grounding entirely — and persist whatever
      had to be computed for the next cold start. *)

  val set_pool : t -> Spec.Concrete.t list -> bool
  (** Swap the buildcache; [true] iff the pool digest changed. Applies
      the entry-group delta in place (removed entries retract through
      delete/re-derive, added ones extend semi-naively) and persists
      the new grounding when a cache dir is configured. Any
      {!session} built earlier must be discarded — it shares the
      mutated atom store. *)

  val session : t -> Session.t
  (** A solve session over the current grounding (snapshot +
      translate; no regrounding). Valid until the next {!set_pool}. *)

  val pool_digest : Spec.Concrete.t list -> string
  (** Content digest of a buildcache (sorted DAG hashes) — the pool
      half of the ground-cache key, shared with the solve server's
      eviction generation. *)

  val generation : t -> int
  (** Bumped by every applied pool delta. *)

  val entry_count : t -> int

  val digest : t -> string
  (** Pool digest of the currently applied buildcache. *)

  val words : t -> int
  (** Resident heap words of the warm grounding. *)

  val from_cache : t -> bool
  (** Whether {!create} loaded the grounding from disk. *)

  val setup_seconds : t -> float
end

val concretize_batch :
  repo:Pkg.Repo.t ->
  ?options:options ->
  ?jobs:int ->
  ?session:bool ->
  Encode.request list ->
  (outcome, failure) result list
(** Concretize independent requests in parallel over [jobs] OCaml
    domains (default 1), one result per request in request order.
    Requests are partitioned statically (request [i] on domain
    [i mod jobs]), so results are order-stable for any [jobs]; the
    default mode solves each request fresh (with pruning per
    [options]) and is byte-deterministic regardless of [jobs].
    [session] instead builds one {!Session} per domain over all batch
    roots and reuses it for that domain's requests — faster for many
    requests over one big universe, deterministic in costs but not
    necessarily in cost-tied model choice. The mirror layer is
    consulted once, before any domain spawns. *)
