(** The concretizer: Spack's dependency resolver with automatic
    splicing (§5).

    Pipeline (§3.3): compile packages + requests + reusable specs to
    ASP facts ({!Encode}), join them with the logic program
    ({!Program}), ground and solve for the optimal stable model
    ({!Asp}), and interpret the model back into concrete specs
    ({!Decode}).

    Knobs map one-to-one onto the paper's experimental axes (§6.1.4):
    the reusable-spec [encoding] (old vs hash_attr), whether automatic
    [splicing] is considered, and the set of reusable specs (the
    buildcache contents). *)

type options = {
  encoding : Encode.encoding;
  splicing : bool;
  reuse : Spec.Concrete.t list;
  mirrors : Binary.Mirror.group option;
      (** mirror layer to pull additional reusable specs from: only the
          {e currently reachable} mirrors contribute (degraded solves
          run over whatever metadata is reachable) *)
  host_os : string;
  host_target : string;
  certify : bool;
      (** record a DRUP-style proof in the SAT core so UNSAT answers
          carry an independently checkable refutation *)
}

val default_options : options
(** hash_attr encoding, splicing off, no reuse, no mirrors,
    linux/x86_64 host, certification off. *)

type stats = {
  ground_atoms : int;
  ground_rules : int;
  fact_count : int;
  sat_stats : (string * int) list;
  stable_checks : int;
  costs : (int * int) list;
  encode_seconds : float;
  ground_seconds : float;
  solve_seconds : float;
  total_seconds : float;
}

type outcome = {
  solution : Decode.solution;
  stats : stats;
}

type failure = {
  f_message : string;
  f_proof : Asp.Sat.proof_step list option;
      (** the refutation certificate, present iff the failure was an
          UNSAT answer and [options.certify] was set *)
}

val concretize_v :
  repo:Pkg.Repo.t ->
  ?options:options ->
  Encode.request list ->
  (outcome, failure) result
(** Like {!concretize} but with a structured failure that carries the
    DRUP proof for certified UNSAT answers. *)

val concretize :
  repo:Pkg.Repo.t ->
  ?options:options ->
  Encode.request list ->
  (outcome, string) result
(** Concretize one or more abstract requests jointly. [Error] carries
    "UNSAT" or a decode failure description. *)

val concretize_spec :
  repo:Pkg.Repo.t -> ?options:options -> string -> (outcome, string) result
(** Convenience: single request from spec syntax. *)

val pp_stats : Format.formatter -> stats -> unit
