open Spec

(* Merge plan: for every package name in the result, which side's node
   record and outgoing edges to keep. *)
type side = Target | Replacement

let splice ?replace ~target ~replacement ~transitive () =
  let rname =
    match replace with Some r -> r | None -> Concrete.root replacement
  in
  if Concrete.find_node target rname = None then
    invalid_arg
      (Printf.sprintf "splice: target has no node %S to replace" rname);
  let new_root_name = Concrete.root replacement in
  let target_names =
    List.map (fun (n : Concrete.node) -> n.Concrete.name) (Concrete.nodes target)
  in
  let repl_names =
    List.map (fun (n : Concrete.node) -> n.Concrete.name) (Concrete.nodes replacement)
  in
  let side name =
    let in_t = List.mem name target_names and in_r = List.mem name repl_names in
    match (in_t, in_r) with
    | true, true ->
      if String.equal name rname then Replacement
      else if transitive then Replacement
      else Target
    | true, false -> Target
    | false, _ -> Replacement
  in
  (* Collect nodes and edges, starting from the target's root, with the
     replaced name resolving to the replacement's root. *)
  let rename c = if String.equal c rname then new_root_name else c in
  let nodes = Hashtbl.create 16 in
  let edges = ref [] in
  let rec visit name =
    if not (Hashtbl.mem nodes name) then begin
      let from, record =
        match side name with
        | Target -> (target, Concrete.node target name)
        | Replacement -> (replacement, Concrete.node replacement name)
      in
      Hashtbl.replace nodes name record;
      List.iter
        (fun (c, dt) ->
          let c' = rename c in
          edges := (name, c', dt) :: !edges;
          visit c')
        (Concrete.children from name)
    end
  in
  let root =
    if String.equal (Concrete.root target) rname then new_root_name
    else Concrete.root target
  in
  visit root;
  let merged =
    Concrete.create ~root
      ~nodes:(Hashtbl.fold (fun _ n acc -> n :: acc) nodes [])
      ~edges:!edges ()
  in
  (* Provenance: a node whose sub-DAG hash no longer matches the hash
     it had on its own side was relinked; record what it was built as
     (keeping an earlier provenance if this is a re-splice) and drop
     its build-only edges. *)
  let provenance_hash name =
    let source = match side name with Target -> target | Replacement -> replacement in
    let original = Concrete.node source name in
    match original.Concrete.build_hash with
    | Some h -> h (* built even earlier, as h *)
    | None -> Concrete.node_hash source name
  in
  let changed name =
    let source = match side name with Target -> target | Replacement -> replacement in
    not (String.equal (Concrete.node_hash merged name) (Concrete.node_hash source name))
  in
  let final_nodes =
    Hashtbl.fold
      (fun name (n : Concrete.node) acc ->
        let n =
          if changed name then { n with Concrete.build_hash = Some (provenance_hash name) }
          else n
        in
        n :: acc)
      nodes []
  in
  let final_edges =
    List.filter
      (fun (p, (_ : string), dt) ->
        (* Relinked nodes shed build-only dependencies (§4.1). *)
        if changed p && not dt.Types.link then false else true)
      !edges
    |> List.map (fun (p, c, dt) ->
           if changed p then (p, c, { dt with Types.build = false }) else (p, c, dt))
  in
  (* Dropping build edges can orphan pure build dependencies; keep only
     what the root still reaches. *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (p, c, _) ->
      Hashtbl.replace adj p (c :: (try Hashtbl.find adj p with Not_found -> [])))
    final_edges;
  let reachable = Hashtbl.create 16 in
  let rec reach name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      List.iter reach (try Hashtbl.find adj name with Not_found -> [])
    end
  in
  reach root;
  let final_nodes =
    List.filter (fun (n : Concrete.node) -> Hashtbl.mem reachable n.Concrete.name) final_nodes
  in
  let final_edges = List.filter (fun (p, _, _) -> Hashtbl.mem reachable p) final_edges in
  Concrete.create ~root ~nodes:final_nodes ~edges:final_edges ~build_spec:target ()

let changed_nodes spec =
  List.filter_map
    (fun (n : Concrete.node) ->
      match n.Concrete.build_hash with Some _ -> Some n.Concrete.name | None -> None)
    (Concrete.nodes spec)
