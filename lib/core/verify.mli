(** Independent validation of concretizer output.

    The concretizer's correctness rests on the ASP encoding; this
    module re-checks a concrete spec against the package repository
    and the user's request {e without} the solver — a separate, direct
    implementation of the concretization semantics used for
    differential testing (every solver answer must pass) and as a
    safety net for externally supplied specs (lockfiles, caches).

    Checked invariants:
    - every node's package exists; its version is declared (or marked
      as coming from reuse); variant values are declared and legal;
    - every dependency directive whose [when] condition holds is
      satisfied by an edge to a matching node (virtuals through a
      provider), and the dependency's version/variant constraints hold;
    - conflicts whose conditions hold are absent;
    - at most one provider of any virtual in the DAG;
    - the user's abstract request is satisfied;
    - the DAG is acyclic with one node per package (by construction of
      {!Spec.Concrete.t}) and all node targets are host-compatible. *)

type violation = {
  v_node : string;
  v_rule : string;  (** short machine-ish tag, e.g. "undeclared-version" *)
  v_detail : string;
}

val check_solution :
  repo:Pkg.Repo.t ->
  ?request:Spec.Abstract.t ->
  ?host_os:string ->
  ?host_target:string ->
  ?allow_reused_versions:bool ->
  Spec.Concrete.t ->
  violation list
(** Empty list = valid. [allow_reused_versions] (default true) accepts
    node versions absent from the package's declaration list, as reuse
    of installed specs does. *)

val pp_violation : Format.formatter -> violation -> unit
