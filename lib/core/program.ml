let base =
  {|
%% ---------------- nodes ----------------
attr("node", node(P)) :- attr("root", node(P)).

%% ---------------- condition machinery (5.1.1) ----------------
%% A condition holds unless one of its requirements is refuted.
condition_unsat(Id) :-
    condition_requirement(Id, "node", P),
    not attr("node", node(P)).
condition_unsat(Id) :-
    condition_requirement(Id, "variant", P, Var, Val),
    attr("node", node(P)),
    not attr("variant_value", node(P), Var, Val).
condition_unsat(Id) :-
    condition_requirement(Id, "version_ok", P),
    attr("version", node(P), V),
    not cond_version_ok(Id, V).
condition_holds(Id) :- condition(Id), not condition_unsat(Id).

%% ---------------- dependencies from directives ----------------
%% Link-run dependencies always materialize; build dependencies only
%% matter for nodes that will actually be built (reused binaries shed
%% them, 4.1).
attr("depends_on", node(P), node(D), "link") :-
    condition_holds(Id), imposed_dep(Id, P, D, "link").
attr("depends_on", node(P), node(D), "build") :-
    condition_holds(Id), imposed_dep(Id, P, D, "build"), build(P).

%% Constraints a dependency directive imposes on the dependency.
:- condition_holds(Id), dep_req_version(Id, D),
   attr("version", node(D), V), not dep_version_ok(Id, V).
:- condition_holds(Id), dep_req_variant(Id, D, Var, Val),
   attr("node", node(D)), not attr("variant_value", node(D), Var, Val).

%% ---------------- virtuals and providers ----------------
attr("virtual_node", node(V)) :-
    attr("depends_on", node(P), node(V), DT), virtual(V).
1 { provider(node(Q), node(V)) : provides(Q, V) } 1 :-
    attr("virtual_node", node(V)).
attr("node", node(Q)) :- provider(node(Q), node(V)).
depends_on_actual(P, D, DT) :-
    attr("depends_on", node(P), node(D), DT), not virtual(D).
depends_on_actual(P, Q, DT) :-
    attr("depends_on", node(P), node(V), DT), virtual(V),
    provider(node(Q), node(V)).
attr("node", node(D)) :- depends_on_actual(P, D, DT).

%% ---------------- version selection ----------------
1 { attr("version", node(P), V) : version_decl(P, V) } 1 :-
    attr("node", node(P)).
:- attr("version", node(P), V1), attr("version", node(P), V2), V1 < V2.

%% ---------------- variant selection ----------------
1 { attr("variant_value", node(P), Var, Val) : variant_possible(P, Var, Val) } 1 :-
    attr("node", node(P)), variant_decl(P, Var).
:- attr("variant_value", node(P), Var, V1),
   attr("variant_value", node(P), Var, V2), V1 < V2.

%% ---------------- os / target ----------------
attr("node_os", node(P), OS) :- attr("node", node(P)), host_os(OS), build(P).
attr("node_target", node(P), T) :- attr("node", node(P)), host_target(T), build(P).
:- attr("node_os", node(P), O1), attr("node_os", node(P), O2), O1 < O2.
:- attr("node_target", node(P), T1), attr("node_target", node(P), T2), T1 < T2.
%% Reused binaries must be microarchitecture-compatible with the host.
:- attr("node_target", node(P), T), not target_ok(T).

%% ---------------- reachability ----------------
reach(R, R) :- attr("root", node(R)).
reach(R, D) :- reach(R, P), depends_on_actual(P, D, DT).

%% A DAG may contain at most one provider of any virtual (the link-run
%% single-implementation invariant of 3.1).
:- reach(R, P1), reach(R, P2), provides(P1, V), provides(P2, V), P1 < P2.

%% Every node must serve some root (no dangling satellites).
reached(P) :- reach(R, P).
:- attr("node", node(P)), not reached(P).

%% ---------------- user constraints ----------------
:- user_version_req(P), attr("version", node(P), V), not user_version_ok(P, V).
:- user_variant(P, Var, Val), attr("node", node(P)),
   not attr("variant_value", node(P), Var, Val).
:- user_dep(R, D), not reach(R, D).
:- user_dep_version_req(D), attr("version", node(D), V),
   not user_dep_version_ok(D, V).
:- user_dep_variant(D, Var, Val), attr("node", node(D)),
   not attr("variant_value", node(D), Var, Val).
:- user_forbid(D), attr("node", node(D)).

%% ---------------- conflicts ----------------
:- condition_holds(Id), imposed_conflict(Id).
|}

let reuse =
  {|
%% ---------------- reuse (5.1.2) ----------------
%% Select at most one installed spec per node; chosen specs impose all
%% their recorded attributes.
{ attr("hash", node(P), H) : installed_hash(P, H) } 1 :- attr("node", node(P)).
reused(P) :- attr("hash", node(P), H).
build(P) :- attr("node", node(P)), not reused(P).
impose(H) :- attr("hash", node(P), H).
%% At most one hash per node. Among installed candidates the choice
%% rule's upper bound already enforces this, so the naive pairwise
%% exclusion — quadratic in the number of installed specs per package,
%% and by far the largest rule family at buildcache scale — is only
%% needed where a parent imposes a child hash that is not itself an
%% installed candidate. The encoder marks those as stray_hash facts;
%% conflicts involving a stray ground linearly per stray.
:- stray_hash(P, H1), attr("hash", node(P), H1),
   attr("hash", node(P), H2), H1 != H2.

attr("version", node(P), V) :- impose(H), imposed_constraint(H, "version", P, V).
attr("variant_value", node(P), Var, Val) :-
    impose(H), imposed_constraint(H, "variant", P, Var, Val).
attr("node_os", node(P), OS) :- impose(H), imposed_constraint(H, "node_os", P, OS).
attr("node_target", node(P), T) :-
    impose(H), imposed_constraint(H, "node_target", P, T).
attr("depends_on", node(P), node(C), DT) :-
    impose(H), imposed_constraint(H, "depends_on", P, C, DT).
attr("hash", node(C), CH) :- impose(H), imposed_constraint(H, "hash", C, CH).
|}

let hash_attr_recovery =
  {|
%% ---------------- hash_attr recovery (5.3, Fig. 3b) ----------------
%% The indirection between a reusable spec's attributes and their
%% imposition: everything except the dependency structure is recovered
%% unconditionally; hash and depends_on impositions yield to splices.
imposed_constraint(H, A, N, V) :- hash_attr(H, A, N, V), A != "hash".
imposed_constraint(H, A, N, V1, V2) :- hash_attr(H, A, N, V1, V2), A != "depends_on".
imposed_constraint(H, "hash", C, CH) :-
    hash_attr(H, "hash", C, CH), not splice_child(H, C, CH).
imposed_constraint(H, "depends_on", P, C, DT) :-
    hash_attr(H, "depends_on", P, C, DT), not splice_away(H, C).
|}

let splice_logic =
  {|
%% ---------------- splicing (5.4, Fig. 4b) ----------------
%% For a reused spec's dependency with a declared-compatible
%% replacement, either impose the original (recovery rules above) or
%% splice: suppress the original imposition and wire in a replacement
%% node satisfying a can_splice rule.
splice_possible(H, C, CH) :-
    impose(H), hash_attr(H, "hash", C, CH), can_splice(S, C, CH).
{ splice_child(H, C, CH) } :- splice_possible(H, C, CH).
splice_away(H, C) :- splice_child(H, C, CH).
1 { splice_with(H, C, CH, S) : can_splice(S, C, CH) } 1 :- splice_child(H, C, CH).
attr("node", S) :- splice_with(H, C, CH, S).
attr("depends_on", node(P), S, DT) :-
    splice_with(H, C, CH, S), hash_attr(H, "depends_on", P, C, DT).
attr("splice", node(P), C, CH, S) :-
    splice_with(H, C, CH, S), hash_attr(H, "depends_on", P, C, DT).
|}

let session_layer =
  {|
%% ---------------- session request layer ----------------
%% Free choice atoms an incremental solve session assumes true or false
%% per request; each mirrors one of the user_* constraints above.
%% Requests constrain by *forbidding* the complement: "root@2:" becomes
%% forbid_version(root, V) for every V outside 2:. Every atom below is
%% explicitly assumed by Encode.assumptions_for — an unassumed free
%% atom could be activated spuriously by the solver.
{ root_on(P) : possible_root(P) }.
attr("root", node(P)) :- root_on(P).
{ req_dep(D) : known_name(D) }.
:- req_dep(D), not attr("node", node(D)).
{ forbid_pkg(P) : known_name(P) }.
:- forbid_pkg(P), attr("node", node(P)).
{ forbid_version(P, V) : version_decl(P, V) }.
:- forbid_version(P, V), attr("version", node(P), V).
{ forbid_variant(P, Var, Val) : variant_possible(P, Var, Val) }.
:- forbid_variant(P, Var, Val), attr("variant_value", node(P), Var, Val).
|}

let optimization =
  {|
%% ---------------- objectives ----------------
%% Two-band scheme like Spack's concretizer: quality criteria for nodes
%% that will be BUILT outrank the build count (a fresh build should
%% honour defaults and prefer new versions), the build count outranks
%% quality criteria of REUSED nodes (take what is installed), and
%% splices are a last tie-breaker against plain reuse.
#minimize { 1@6, P, Var : attr("variant_value", node(P), Var, Val),
            variant_default(P, Var, DVal), Val != DVal, build(P) }.
#minimize { W@5, P, V : attr("version", node(P), V), version_weight(P, V, W),
            build(P) }.
%% Number of builds (the paper's top reuse objective, weight 100).
#minimize { 100@4, P : build(P) }.
#minimize { W@3, P, V : attr("version", node(P), V), version_weight(P, V, W),
            reused(P) }.
#minimize { 1@2, P, Var : attr("variant_value", node(P), Var, Val),
            variant_default(P, Var, DVal), Val != DVal, reused(P) }.
%% Prefer earlier-listed providers of a virtual.
#minimize { W@1, Q, V : provider(node(Q), node(V)), provider_weight(Q, V, W) }.
%% All else equal, plain reuse beats a splice.
#minimize { 1@0, P, C : attr("splice", node(P), C, CH, S) }.
|}

let assemble ?(session = false) ~encoding ~splicing () =
  let sections =
    [ base; reuse ]
    @ (match encoding with
      | Encode.Old -> []
      | Encode.Hash_attr -> [ hash_attr_recovery ])
    @ (if splicing then [ splice_logic ] else [])
    @ (if session then [ session_layer ] else [])
    @ [ optimization ]
  in
  String.concat "\n" sections
