(** [spackml serve]: a resident multi-tenant concretization server.

    Keeps the expensive request-independent state — ground program,
    interned terms, warm {!Concretizer.Session}s, dependency closures —
    alive across requests, turning the per-request cost from
    encode+ground+warm-up into a solve under assumptions:

    - a pool of OCaml 5 domain workers, each owning a warm session over
      the configured root universe;
    - per-worker request queues with stealing, bounded admission
      ([max_queue]) answering a typed [overloaded] status instead of
      queueing without bound;
    - per-request deadlines and conflict caps enforced {e inside} the
      SAT core via {!Asp.Solver_intf.budget}: a preempted request
      answers [timeout] and the worker's session stays reusable;
    - dependency closures cached by (roots, buildcache digest);
      {!set_reuse} bumps a generation when the digest changes, dropping
      cached closures eagerly and warm sessions lazily;
    - length-prefixed JSON frames ({!Sjson.Frame}) over a Unix socket.

    {2 Wire protocol}

    Requests are JSON objects: [{"id": any, "op": "solve" | "ping" |
    "stats" | "dump" | "reload" | "shutdown", ...}]. A [solve] carries
    ["spec"] (spec syntax), optional ["mode"] ("session"/"fresh"),
    ["deadline_ms"], ["conflicts"], and (with fault injection) ["boom"].
    Any request may carry a ["rid"] request id (string); the server
    assigns one (["srv-<n>"]) otherwise and stamps it on the request's
    span tree, so client and server traces join. Responses echo ["id"]
    and ["rid"] and carry ["status"] ("ok" | "unsat" | "timeout" |
    "error" | "overloaded"), a canonical ["result"] object
    (byte-comparable against {!canonical_of_result} of a one-shot
    {!Concretizer} run), and a ["server"] object with timing and
    routing detail. Responses to pipelined requests may arrive out of
    request order.

    With live telemetry on (the default), ["stats"] additionally
    answers a ["window"] object — rolling-window request counts, rps,
    solve/queue latency quantiles, overload/deadline-miss/error rates,
    closure- and ground-cache hit rates, session recycles — computed
    over the last ["window"] seconds of the request (rounded up to
    sub-window granularity, clamped to the horizon; default the full
    horizon). ["dump"] returns the flight recorder's recent traces
    ([{"n": int, "keep": "error"|"deadline"|"slow"|"sampled"}]
    optional), each with its ["rid"] and a Perfetto-loadable ["trace"]
    object. *)

(** Live-telemetry configuration: the rolling-window layout behind the
    ["stats"] window answer and the flight-recorder tail-sampling
    policy. *)
type telemetry = {
  horizon_s : float;
      (** rolling-stats horizon in seconds (default 60): the largest
          window ["stats"] can answer *)
  slots : int;
      (** sub-windows per horizon (default 12): rotation granularity,
          and the rounding unit of requested windows *)
  recorder_capacity : int;
      (** flight-recorder ring size (default 256); [0] disables the
          recorder (and the ["dump"] op) but keeps the windows *)
  recorder_sample : int;
      (** keep 1-in-N unremarkable request traces (default 16) *)
  recorder_slowest : int;
      (** always keep the slowest K solves per horizon (default 8) *)
}

val default_telemetry : telemetry

(** Solve mode: [Session] serves from the worker's warm session (cost
    parity with fresh solves; model ties may break differently),
    [Fresh] solves from scratch (byte-deterministic). Requests whose
    root lies outside the session universe fall back to [Fresh]. *)
type mode = Session | Fresh

type config = {
  workers : int;  (** solver domains (default 4) *)
  max_queue : int;
      (** admission bound on enqueued-not-yet-running jobs (default
          256); beyond it requests answer [overloaded] immediately *)
  default_deadline_ms : float option;
      (** deadline applied to requests that don't carry one *)
  default_conflicts : int option;  (** likewise for the conflict cap *)
  default_mode : mode;
  portfolio : int;
      (** upper bound on per-request SAT portfolio width (default 1 =
          off). A solve may race up to this many diversified solver
          clones ({!Concretizer.options.portfolio}), but only by
          borrowing provably idle worker slots from a bounded token
          pool of capacity [workers - 1], so racing never steals CPU
          from queued requests; under load solves degrade to single.
          Requests may lower (never raise) their own width with a
          ["portfolio"] field. Answers carry the granted width when it
          exceeded 1. *)
  session_roots : string list;
      (** root universe of the warm sessions; [[]] = every non-virtual
          package of the repo *)
  session_recycle : int option;
      (** rebuild a worker's warm session after this many solves
          (default [Some 32]). Each optimization descent leaves
          deactivated constraints in the solver, so a long-lived
          session degrades; recycling bounds per-request latency at
          the cost of an amortized session rebuild. [None] = never. *)
  fault_injection : bool;
      (** honor the ["boom"] request flag (tests only): the worker
          raises mid-request and must answer a typed error *)
  reuse_source : (unit -> Spec.Concrete.t list) option;
      (** backing of the wire ["reload"] op: re-read the buildcache
          and {!set_reuse} it *)
  ground_cache : string option;
      (** persistent ground-cache directory ({!Groundcache}): workers
          load their warm grounding from it on cold start and persist
          each new pool generation into it. Keys embed the pool
          digest, so a ["reload"] that changes the buildcache can
          never be served a stale on-disk grounding. [None] (default)
          = in-memory only. *)
  telemetry : telemetry option;
      (** live windowed stats and flight recorder (default
          [Some default_telemetry]); [None] turns the layer off — the
          disabled path costs one branch per request *)
  options : Concretizer.options;
      (** solver options shared by all requests; [options.obs] is the
          server's tracing context ([serve.request] spans,
          [serve.latency_ms]/[serve.queue_ms] histograms,
          [serve.status.*] counters) *)
}

val default_config : config

val pool_digest : Spec.Concrete.t list -> string
(** Content digest of a reusable pool: {!Chash.hash_string} over the
    sorted DAG hashes. The validity key of closures and sessions. *)

type t

val start :
  repo:Pkg.Repo.t -> ?config:config -> socket:string -> unit ->
  (t, string) result
(** Bind the Unix socket, spawn the worker domains and the acceptor,
    and return immediately. *)

val wait : t -> unit
(** Block until the server stops — a client sent ["shutdown"], or
    {!stop} ran on another thread — and every admitted request has
    been answered (shutdown drains the queue). *)

val stop : t -> unit
(** Request shutdown and {!wait}. *)

val socket_path : t -> string

val set_reuse : t -> Spec.Concrete.t list -> bool
(** Replace the reusable pool. If the {!pool_digest} changed: bump the
    generation, drop every cached closure, and invalidate the warm
    sessions (each worker rebuilds lazily before its next session
    solve). Returns whether anything changed. Safe to call while
    requests are in flight — in-flight solves finish against the pool
    snapshot they started with. *)

val generation : t -> int

val pool_digest_of : t -> string

val canonical_of_result :
  (Concretizer.outcome, Concretizer.failure) result -> Sjson.t
(** The canonical solve answer (status, root DAG hash, rendered spec,
    cost vector — nothing timing-dependent). A response's ["result"]
    field for a solve is byte-identical to [canonical_of_result] of
    the equivalent direct {!Concretizer} call; tests and the bench
    compare [Sjson.to_string] of the two. *)

(** In-process driver for the wire protocol (the [spackml client]
    subcommand and the test/bench load generators). Synchronous: one
    outstanding request per connection unless [send]/[recv] are used
    directly. *)
module Client : sig
  type t

  val connect : ?retries:int -> ?backoff_ms:float -> string -> (t, string) result
  (** [retries] (default [0]) bounds the extra attempts each
      {!solve}/{!ping}/... makes beyond the first: a mid-request
      disconnect reconnects (with a fresh frame decoder) and resends;
      a typed [overloaded] response backs off and resends. Delays start
      at [backoff_ms] (default 5ms) and double per retry. With the
      default [retries:0] every failure and overload is returned to the
      caller on first occurrence — the old behavior. When retries are
      exhausted the {e last} outcome is returned, so an overloaded
      server still yields its typed response, not a synthetic error. *)

  val close : t -> unit

  val send : t -> Sjson.t -> (unit, string) result
  (** Frame and write one request object (pipelining allowed). *)

  val recv : t -> (Sjson.t, string) result
  (** Read the next response frame. *)

  val solve :
    ?mode:mode -> ?deadline_ms:float -> ?conflicts:int -> ?boom:bool ->
    ?rid:string -> t -> string -> (Sjson.t, string) result
  (** Solve one spec and await its response. [?rid] propagates a
      client-chosen request id onto the server's span tree; without it
      the server assigns one. Either way the response echoes ["rid"]. *)

  val ping : t -> (Sjson.t, string) result

  val stats : ?window_s:float -> t -> (Sjson.t, string) result
  (** [?window_s] selects the rolling window of the ["window"] block
      (rounded up to sub-window granularity, clamped to the horizon). *)

  val dump : ?n:int -> ?keep:string -> t -> (Sjson.t, string) result
  (** Fetch up to [n] (default 32) recent flight-recorder traces,
      optionally filtered by keep class
      (["error"|"deadline"|"slow"|"sampled"]). *)

  val reload : t -> (Sjson.t, string) result

  val shutdown : t -> (Sjson.t, string) result
end
