type t = {
  env_name : string;
  requests : Encode.request list;
  concrete : Spec.Concrete.t list;
}

let create env_name = { env_name; requests = []; concrete = [] }

let add t text =
  { t with requests = t.requests @ [ Encode.request_of_string text ]; concrete = [] }

let remove t name =
  { t with
    requests =
      List.filter
        (fun (r : Encode.request) ->
          r.Encode.req.Spec.Abstract.root.Spec.Abstract.name <> name)
        t.requests;
    concrete = [] }

let concretize ~repo ?options t =
  if t.requests = [] then Ok { t with concrete = [] }
  else
    match Concretizer.concretize ~repo ?options t.requests with
    | Error e -> Error e
    | Ok o -> Ok { t with concrete = o.Concretizer.solution.Decode.specs }

let lockfile t =
  Sjson.Object
    [ ("name", Sjson.String t.env_name);
      ( "roots",
        Sjson.Array
          (List.map
             (fun (r : Encode.request) ->
               Sjson.Object
                 [ ("spec", Sjson.String (Spec.Abstract.to_string r.Encode.req));
                   ( "forbid",
                     Sjson.Array (List.map (fun f -> Sjson.String f) r.Encode.forbid) )
                 ])
             t.requests) );
      ("concrete", Sjson.Array (List.map Spec.Codec.to_json t.concrete)) ]

let of_lockfile j =
  let env_name = Sjson.get_string (Sjson.member "name" j) in
  let requests =
    List.map
      (fun r ->
        let forbid =
          List.map Sjson.get_string (Sjson.to_list (Sjson.member "forbid" r))
        in
        Encode.request_of_string ~forbid (Sjson.get_string (Sjson.member "spec" r)))
      (Sjson.to_list (Sjson.member "roots" j))
  in
  let concrete =
    List.map Spec.Codec.of_json (Sjson.to_list (Sjson.member "concrete" j))
  in
  { env_name; requests; concrete }

let install t store ~repo ?(caches = []) () =
  List.map
    (fun spec ->
      (Spec.Concrete.root spec, Binary.Installer.install_exn store ~repo ~caches spec))
    t.concrete

let status t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "environment %s: %d roots" t.env_name
                         (List.length t.requests));
  if t.concrete = [] then Buffer.add_string b " (not concretized)"
  else begin
    Buffer.add_string b "\n";
    List.iter
      (fun spec ->
        Buffer.add_string b
          (Printf.sprintf "  [%s] %s\n"
             (Chash.short (Spec.Concrete.dag_hash spec))
             (Spec.Concrete.to_string spec)))
      t.concrete
  end;
  Buffer.contents b
