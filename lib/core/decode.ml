module T = Asp.Term
module Smap = Spec.Types.Smap

type splice_record = {
  sp_parent : string;
  sp_old : string;
  sp_old_hash : string;
  sp_new : string;
}

type solution = {
  specs : Spec.Concrete.t list;
  built : string list;
  reused : (string * string) list;
  splices : splice_record list;
  model : Asp.Logic.model;
}

(* Model atoms bucketed into lookup tables. *)
type tables = {
  nodes : (string, unit) Hashtbl.t;
  versions : (string, string) Hashtbl.t;
  variants : (string, (string * string) list ref) Hashtbl.t;
  oses : (string, string) Hashtbl.t;
  targets : (string, string) Hashtbl.t;
  hashes : (string, string) Hashtbl.t;
  builds : (string, unit) Hashtbl.t;
  edges : (string, (string * Spec.Types.deptypes) list ref) Hashtbl.t;
  splice_atoms : splice_record list ref;
}

let node_name = function T.App ("node", [ T.Str p ]) -> Some p | _ -> None

let scan (model : Asp.Logic.model) =
  let t =
    { nodes = Hashtbl.create 64;
      versions = Hashtbl.create 64;
      variants = Hashtbl.create 64;
      oses = Hashtbl.create 64;
      targets = Hashtbl.create 64;
      hashes = Hashtbl.create 64;
      builds = Hashtbl.create 64;
      edges = Hashtbl.create 64;
      splice_atoms = ref [] }
  in
  let add_edge p c dt =
    let merged =
      match Hashtbl.find_opt t.edges p with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add t.edges p l;
        l
    in
    match List.assoc_opt c !merged with
    | Some prev ->
      merged :=
        (c, Spec.Types.deptypes_union prev dt) :: List.remove_assoc c !merged
    | None -> merged := (c, dt) :: !merged
  in
  List.iter
    (fun (a : Asp.Ast.atom) ->
      match (a.Asp.Ast.pred, a.Asp.Ast.args) with
      | "attr", [ T.Str "node"; n ] -> (
        match node_name n with
        | Some p -> Hashtbl.replace t.nodes p ()
        | None -> ())
      | "attr", [ T.Str "version"; n; T.Str v ] -> (
        match node_name n with
        | Some p -> Hashtbl.replace t.versions p v
        | None -> ())
      | "attr", [ T.Str "variant_value"; n; T.Str var; T.Str value ] -> (
        match node_name n with
        | Some p -> (
          match Hashtbl.find_opt t.variants p with
          | Some l -> l := (var, value) :: !l
          | None -> Hashtbl.add t.variants p (ref [ (var, value) ]))
        | None -> ())
      | "attr", [ T.Str "node_os"; n; T.Str os ] -> (
        match node_name n with
        | Some p -> Hashtbl.replace t.oses p os
        | None -> ())
      | "attr", [ T.Str "node_target"; n; T.Str tg ] -> (
        match node_name n with
        | Some p -> Hashtbl.replace t.targets p tg
        | None -> ())
      | "attr", [ T.Str "hash"; n; T.Str h ] -> (
        match node_name n with
        | Some p -> Hashtbl.replace t.hashes p h
        | None -> ())
      | "attr", [ T.Str "splice"; n; T.Str old_name; T.Str old_hash; s ] -> (
        match (node_name n, node_name s) with
        | Some parent, Some replacement ->
          t.splice_atoms :=
            { sp_parent = parent;
              sp_old = old_name;
              sp_old_hash = old_hash;
              sp_new = replacement }
            :: !(t.splice_atoms)
        | _ -> ())
      | "build", [ T.Str p ] -> Hashtbl.replace t.builds p ()
      | "depends_on_actual", [ T.Str p; T.Str c; T.Str dt ] ->
        add_edge p c
          (match dt with
          | "build" -> Spec.Types.dt_build
          | _ -> Spec.Types.dt_link)
      | _ -> ())
    model.Asp.Logic.atoms;
  t

let link_children t p =
  match Hashtbl.find_opt t.edges p with
  | None -> []
  | Some l -> List.filter (fun ((_ : string), dt) -> dt.Spec.Types.link) !l

let all_children t p =
  match Hashtbl.find_opt t.edges p with None -> [] | Some l -> !l

(* A reused node is unchanged when its imposed link-dependency
   structure matches the pool spec hash-for-hash, recursively. *)
let rec unchanged ~pool ~t memo p =
  match Hashtbl.find_opt memo p with
  | Some r -> r
  | None ->
    let r =
      match Hashtbl.find_opt t.hashes p with
      | None -> false
      | Some h -> (
        match Hashtbl.find_opt pool.Encode.by_hash h with
        | None -> false
        | Some spec ->
          let pool_children =
            List.filter
              (fun ((_ : string), dt) -> dt.Spec.Types.link)
              (Spec.Concrete.children spec p)
          in
          let model_children = link_children t p in
          let names l = List.sort String.compare (List.map fst l) in
          names pool_children = names model_children
          && List.for_all
               (fun (c, _) ->
                 match Hashtbl.find_opt t.hashes c with
                 | Some ch ->
                   String.equal ch (Spec.Concrete.node_hash spec c)
                   && unchanged ~pool ~t memo c
                 | None -> false)
               pool_children)
    in
    Hashtbl.replace memo p r;
    r

exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let build_spec_for ~pool ~t root =
  let memo = Hashtbl.create 32 in
  let nodes : (string, Spec.Concrete.node) Hashtbl.t = Hashtbl.create 32 in
  let edges : (string, (string * Spec.Types.deptypes) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let graft spec =
    List.iter
      (fun (n : Spec.Concrete.node) ->
        if not (Hashtbl.mem nodes n.Spec.Concrete.name) then begin
          Hashtbl.replace nodes n.Spec.Concrete.name n;
          Hashtbl.replace edges n.Spec.Concrete.name
            (Spec.Concrete.children spec n.Spec.Concrete.name)
        end)
      (Spec.Concrete.nodes spec)
  in
  let rec collect p =
    if not (Hashtbl.mem nodes p) then begin
      if not (Hashtbl.mem t.nodes p) then fail "solution has no node %s" p;
      let reused_hash = Hashtbl.find_opt t.hashes p in
      let is_unchanged =
        match reused_hash with
        | Some _ -> unchanged ~pool ~t memo p
        | None -> false
      in
      match (reused_hash, is_unchanged) with
      | Some h, true ->
        (* Pure reuse: graft the installed sub-DAG verbatim so hashes
           round-trip. *)
        let spec =
          match Hashtbl.find_opt pool.Encode.by_hash h with
          | Some s -> s
          | None -> fail "reused hash %s not in pool" h
        in
        graft spec
      | _ ->
        let version =
          match Hashtbl.find_opt t.versions p with
          | Some v -> Vers.Version.of_string v
          | None -> fail "node %s has no version in the model" p
        in
        let variants =
          match Hashtbl.find_opt t.variants p with
          | None -> Smap.empty
          | Some l ->
            List.fold_left
              (fun m (var, value) ->
                let v =
                  match value with
                  | "True" -> Spec.Types.Bool true
                  | "False" -> Spec.Types.Bool false
                  | s -> Spec.Types.Str s
                in
                Smap.add var v m)
              Smap.empty !l
        in
        let os = Option.value (Hashtbl.find_opt t.oses p) ~default:"unknown" in
        let target = Option.value (Hashtbl.find_opt t.targets p) ~default:"unknown" in
        let build_hash =
          (* Relinked reused node: it was built as its chosen hash —
             unless the installed binary itself carries older
             provenance (a re-splice), which wins. *)
          match reused_hash with
          | None -> None
          | Some h -> (
            match Hashtbl.find_opt pool.Encode.by_hash h with
            | Some spec -> (
              match (Spec.Concrete.root_node spec).Spec.Concrete.build_hash with
              | Some older -> Some older
              | None -> Some h)
            | None -> Some h)
        in
        let children =
          (* A relinked binary sheds build-only deps (§4.1); a node
             built from source keeps them. *)
          match reused_hash with
          | Some _ -> link_children t p
          | None -> all_children t p
        in
        Hashtbl.replace nodes p
          { Spec.Concrete.name = p; version; variants; os; target; build_hash };
        Hashtbl.replace edges p children;
        List.iter (fun (c, _) -> collect c) children
    end
  in
  collect root;
  let node_list = Hashtbl.fold (fun _ n acc -> n :: acc) nodes [] in
  let edge_list =
    Hashtbl.fold
      (fun p cs acc -> List.fold_left (fun acc (c, dt) -> (p, c, dt) :: acc) acc cs)
      edges []
  in
  let spec = Spec.Concrete.create ~root ~nodes:node_list ~edges:edge_list () in
  (* Spec-level provenance: when the root itself was relinked, the
     installed spec it reuses is the build spec. *)
  match ((Spec.Concrete.root_node spec).Spec.Concrete.build_hash, Hashtbl.find_opt t.hashes root) with
  | Some _, Some h -> (
    match Hashtbl.find_opt pool.Encode.by_hash h with
    | Some original -> Spec.Concrete.with_build_spec spec (Some original)
    | None -> spec)
  | _ -> spec

let decode ~pool ~requests model =
  let t = scan model in
  try
    let specs =
      List.map
        (fun (r : Encode.request) ->
          build_spec_for ~pool ~t r.Encode.req.Spec.Abstract.root.Spec.Abstract.name)
        requests
    in
    let built = Hashtbl.fold (fun p () acc -> p :: acc) t.builds [] |> List.sort String.compare in
    let reused =
      Hashtbl.fold (fun p h acc -> (p, h) :: acc) t.hashes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Ok { specs; built; reused; splices = !(t.splice_atoms); model }
  with Decode_error e -> Error e

let is_spliced_solution s = s.splices <> []
