(** Compilation of the concretizer's inputs to ASP facts and rules
    (§5.1–§5.3).

    Three fact groups: package definitions (versions, variants,
    conditional dependencies via the condition/requirement/imposition
    machinery of §5.1.1, provides, conflicts), the user's abstract
    requests, and reusable concrete specs — in either the {e old}
    direct [imposed_constraint] encoding (§5.1.2) or the {e new}
    [hash_attr] encoding that splicing needs (§5.3, Fig. 3a).

    [can_splice] directives compile to one ASP rule each (Fig. 4a),
    generated here because their version-range tests must be
    precompiled against the known version universe (ASP cannot order
    version strings). *)

type encoding = Old | Hash_attr

type request = {
  req : Spec.Abstract.t;
  forbid : string list;
      (** package names the solution must not contain (§6.4 requires
          solutions that do not depend on mpich) *)
}

val request_of_string : ?forbid:string list -> string -> request

type reuse_pool = {
  by_hash : (string, Spec.Concrete.t) Hashtbl.t;
      (** node hash -> the concrete sub-DAG rooted there *)
}

val pool_of_specs : Spec.Concrete.t list -> reuse_pool
(** Index every node of every spec (each is individually reusable). *)

val pool_size : reuse_pool -> int

type t = {
  facts : Asp.Ast.statement list;
  rules : Asp.Ast.statement list;  (** generated can_splice rules *)
  pool : reuse_pool;
      (** the pool the facts describe — pruned when [prune] was set *)
  pool_total : int;  (** pool size before pruning *)
}

val closure :
  repo:Pkg.Repo.t ->
  splicing:bool ->
  pool:reuse_pool ->
  string list ->
  (string, unit) Hashtbl.t
(** Dependency closure of a set of root package names: an
    over-approximation of every package that can appear as a node in a
    solution rooted there. Follows all dependency directives
    (conditions ignored, like the grounder's possible-atom phase),
    virtuals to all providers, [can_splice] directives of closure
    packages to their targets, and reusable sub-DAGs rooted at closure
    packages to all their nodes. Facts about packages outside the
    closure cannot influence any model, so pruning them is sound. *)

val encode :
  repo:Pkg.Repo.t ->
  encoding:encoding ->
  splicing:bool ->
  reuse:Spec.Concrete.t list ->
  ?prune:bool ->
  ?closure:(string, unit) Hashtbl.t ->
  ?obs:Obs.ctx ->
  host_os:string ->
  host_target:string ->
  request list ->
  t
(** [prune] (default [false]) restricts package facts and the reusable
    pool to the {!closure} of the requested roots: a buildcache of
    thousands of specs grounds like one holding only the specs a
    request could actually use. [?closure] supplies that closure
    precomputed (the solve server caches it keyed by roots + pool
    digest); it is trusted as-is and only consulted when [prune] is
    set, counting an [encode.closure_cache_hits] metric. [?obs]
    records the closure computation as an [encode.closure] span and
    the pool sizes as [encode.pool_total]/[encode.pool_kept]
    gauges. *)

(** {2 Incremental sessions} *)

type session_env = {
  se_roots : string list;  (** [possible_root] domain *)
  se_names : string list;  (** [req_dep]/[forbid_pkg] domain *)
  se_versions : (string * Vers.Version.t list) list;
      (** [forbid_version] domain per package *)
  se_variants : ((string * string) * string list) list;
      (** [forbid_variant] domain per (package, variant) *)
}

val encode_session :
  repo:Pkg.Repo.t ->
  encoding:encoding ->
  splicing:bool ->
  reuse:Spec.Concrete.t list ->
  ?prune:bool ->
  ?closure:(string, unit) Hashtbl.t ->
  ?obs:Obs.ctx ->
  host_os:string ->
  host_target:string ->
  roots:string list ->
  unit ->
  t * session_env
(** Encode the request-independent universe for an incremental solve
    session covering any single-root request whose root is in [roots]:
    instead of user-request facts it emits [possible_root]/[known_name]
    domains for the free choice atoms of {!Program.session_layer}.
    [prune] (default [true]) restricts the universe to the closure of
    [roots]. *)

val assumptions_for :
  session_env -> request -> ((Asp.Ast.atom * bool) list, string) result
(** The complete truth assignment over the session's choice atoms that
    makes the session program equivalent to a fresh encode of this
    single request: the request's root on, all other roots off, every
    version/variant value outside the requested ranges forbidden,
    everything else explicitly off (leaving a choice atom unassumed
    would let the solver activate it spuriously). Requests that are
    trivially unsatisfiable (a variant value the package can never
    take) are expressed as an assumption on a deliberately nonexistent
    atom, which {!Asp.Logic.session_solve} reports as UNSAT. [Error]
    only for misuse: a root the session was not created for. *)

(** {2 Layered (delta) encoding}

    The monolithic session encode precompiles version ranges against
    the full version universe (declared plus buildcache versions), so
    any pool change invalidates every emitted fact. The layered split
    makes the buildcache a {e delta}: a pool-independent base (package
    facts against the declared universe, every range precompilation
    recorded as a hook) plus named per-entry fact groups that
    {!Asp.Ground.layered_update} applies and retracts incrementally.
    Base + the groups of pool [P] is fact-for-fact the unpruned
    session encode over [P]. *)

type hook = {
  hk_pred : string;
      (** [cond_version_ok] / [dep_version_ok] / [splice_when_version_ok]
          / [splice_target_version_ok] *)
  hk_id : string;  (** condition or splice id (the fact's first argument) *)
  hk_pkg : string;  (** package whose versions the range tests *)
  hk_range : Vers.Range.t;
}
(** A version-range precompilation site in the base encoding. A pool
    version satisfying the range owes the base the corresponding
    [hk_pred(hk_id, v)] fact; the version's pool group carries it. *)

type layered_base = {
  lb_repo : Pkg.Repo.t;
  lb_encoding : encoding;
  lb_splicing : bool;
  lb_facts : Asp.Ast.statement list;  (** pool-independent facts *)
  lb_rules : Asp.Ast.statement list;  (** generated can_splice rules *)
  lb_hooks : hook list;
  lb_packages : Pkg.Package.t list;
  lb_roots : string list;
  lb_names : string list;
  lb_variants : ((string * string) * string list) list;
}

val encode_layered_base :
  repo:Pkg.Repo.t ->
  encoding:encoding ->
  splicing:bool ->
  ?obs:Obs.ctx ->
  host_os:string ->
  host_target:string ->
  roots:string list ->
  unit ->
  layered_base
(** The pool-independent base for a session universe covering [roots]
    (deduplicated): everything {!encode_session} with [prune:false]
    and an empty pool would emit, plus the hook list. Never pruned —
    the layered grounding is shared across requests, and pruning is
    superseded by delta-grounding only the entries actually present. *)

val pool_groups :
  ?obs:Obs.ctx -> layered_base -> reuse_pool -> Asp.Factstore.t
(** The pool layer as named columnar fact groups: [h:HASH] per
    reusable sub-DAG ([installed_hash] + attribute tuples) and
    [v:PKG\@VER] per pool-only version ([version_decl] /
    [version_weight 20] + satisfied hook facts). Group keys are what
    a warm concretizer diffs to turn a buildcache swap into a
    {!Asp.Ground.layered_update} delta. Records the store's resident
    size as a [factstore.words] gauge under [?obs]. *)

val layered_env : layered_base -> reuse_pool -> session_env
(** The session assumption domains for base + this pool — same shape
    {!encode_session} returns, with [se_versions] recomputed over
    declared plus pool versions. *)
