(** Compilation of the concretizer's inputs to ASP facts and rules
    (§5.1–§5.3).

    Three fact groups: package definitions (versions, variants,
    conditional dependencies via the condition/requirement/imposition
    machinery of §5.1.1, provides, conflicts), the user's abstract
    requests, and reusable concrete specs — in either the {e old}
    direct [imposed_constraint] encoding (§5.1.2) or the {e new}
    [hash_attr] encoding that splicing needs (§5.3, Fig. 3a).

    [can_splice] directives compile to one ASP rule each (Fig. 4a),
    generated here because their version-range tests must be
    precompiled against the known version universe (ASP cannot order
    version strings). *)

type encoding = Old | Hash_attr

type request = {
  req : Spec.Abstract.t;
  forbid : string list;
      (** package names the solution must not contain (§6.4 requires
          solutions that do not depend on mpich) *)
}

val request_of_string : ?forbid:string list -> string -> request

type reuse_pool = {
  by_hash : (string, Spec.Concrete.t) Hashtbl.t;
      (** node hash -> the concrete sub-DAG rooted there *)
}

val pool_of_specs : Spec.Concrete.t list -> reuse_pool
(** Index every node of every spec (each is individually reusable). *)

val pool_size : reuse_pool -> int

type t = {
  facts : Asp.Ast.statement list;
  rules : Asp.Ast.statement list;  (** generated can_splice rules *)
  pool : reuse_pool;
}

val encode :
  repo:Pkg.Repo.t ->
  encoding:encoding ->
  splicing:bool ->
  reuse:Spec.Concrete.t list ->
  host_os:string ->
  host_target:string ->
  request list ->
  t
