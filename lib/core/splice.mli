(** Splice mechanics on concrete specs (§4, Fig. 2).

    [splice ~target ~replacement ~transitive] produces the spec DAG in
    which [replacement]'s root stands in for a node of [target]:

    - the replaced node (by default the node named like [replacement]'s
      root; [?replace] overrides, allowing cross-name splices like
      [example-ng] for [example]) and its exclusive subtree leave the
      DAG, [replacement]'s DAG comes in, and every edge that pointed at
      the replaced node now points at [replacement]'s root;
    - dependencies {e shared} between the remaining target and the
      replacement are tie-broken (§4.1): a {e transitive} splice takes
      the replacement's copies, an {e intransitive} one keeps the
      target's;
    - every node whose link-time dependencies changed is marked with a
      [build_hash] — the DAG hash it was actually compiled as — and
      loses its build-only dependency edges (they no longer describe
      the runtime representation); the resulting spec records [target]
      as its [build_spec] for full provenance. *)

val splice :
  ?replace:string ->
  target:Spec.Concrete.t ->
  replacement:Spec.Concrete.t ->
  transitive:bool ->
  unit ->
  Spec.Concrete.t
(** @raise Invalid_argument when the replaced node is absent from
    [target], or when the merge would be cyclic. *)

val changed_nodes : Spec.Concrete.t -> string list
(** Names of nodes carrying splice provenance (a [build_hash]). *)
