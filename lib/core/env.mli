(** Environments: named collections of root specs concretized
    {e jointly} and pinned by a lockfile (Spack's spack.yaml /
    spack.lock analogue).

    Joint concretization gives all roots one consistent DAG per
    package (§6.3 concretizes the stack "separately and jointly");
    the lockfile pins every concrete spec — hashes included, splice
    provenance included — so an environment can be reinstalled
    bit-for-bit elsewhere. *)

type t = {
  env_name : string;
  requests : Encode.request list;  (** the abstract roots, in order *)
  concrete : Spec.Concrete.t list;
      (** one per request after {!concretize}; empty before *)
}

val create : string -> t

val add : t -> string -> t
(** Add a root in spec syntax. Clears stale concretizations.
    @raise Spec.Parser.Parse_error *)

val remove : t -> string -> t
(** Remove roots whose package name matches. *)

val concretize :
  repo:Pkg.Repo.t -> ?options:Concretizer.options -> t -> (t, string) result
(** Concretize all roots jointly. *)

val lockfile : t -> Sjson.t
(** Roots + full concrete specs. Only valid after {!concretize}. *)

val of_lockfile : Sjson.t -> t
(** @raise Sjson.Parse_error on malformed input. *)

val install :
  t ->
  Binary.Store.t ->
  repo:Pkg.Repo.t ->
  ?caches:Binary.Buildcache.t list ->
  unit ->
  (string * Binary.Installer.report) list
(** Install every concretized root; returns per-root reports. *)

val status : t -> string
(** Human-readable summary. *)
