type violation = {
  v_node : string;
  v_rule : string;
  v_detail : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "%s: [%s] %s" v.v_node v.v_rule v.v_detail

let node_matches_when (n : Spec.Concrete.node) = function
  | None -> true
  | Some w -> Spec.Concrete.node_satisfies n w

(* Does some node of the DAG satisfy a dependency spec's root
   constraints, reachable by an edge from [parent]? Virtual targets
   match through providers. *)
let dep_satisfied ~repo spec parent (d : Pkg.Package.dep_decl) =
  let droot = d.Pkg.Package.d_spec.Spec.Abstract.root in
  let dname = droot.Spec.Abstract.name in
  let children = Spec.Concrete.children spec parent in
  let candidate_names =
    if Pkg.Repo.is_virtual repo dname then
      List.map (fun (p : Pkg.Package.t) -> p.Pkg.Package.name)
        (Pkg.Repo.providers repo dname)
    else [ dname ]
  in
  List.exists
    (fun (c, (dt : Spec.Types.deptypes)) ->
      List.mem c candidate_names
      && (* edge types must cover the directive's (build deps may be
            pruned from relinked/reused binaries, so only require the
            link part when the node was not built fresh) *)
      (dt.Spec.Types.link || not d.Pkg.Package.d_types.Spec.Types.link)
      &&
      let cn = Spec.Concrete.node spec c in
      (* For virtuals, only the version/variant constraints of the
         directive apply to the provider when they name the virtual's
         interface — our model applies them structurally. *)
      (Pkg.Repo.is_virtual repo dname && Vers.Range.is_any droot.Spec.Abstract.version
       && Spec.Types.Smap.is_empty droot.Spec.Abstract.variants)
      || Spec.Concrete.node_satisfies cn { droot with Spec.Abstract.name = cn.Spec.Concrete.name })
    children

let check_solution ~repo ?request ?(host_os = "linux") ?(host_target = "x86_64")
    ?(allow_reused_versions = true) spec =
  let violations = ref [] in
  let add v_node v_rule fmt =
    Format.kasprintf (fun v_detail -> violations := { v_node; v_rule; v_detail } :: !violations) fmt
  in
  let nodes = Spec.Concrete.nodes spec in
  (* per-node checks *)
  List.iter
    (fun (n : Spec.Concrete.node) ->
      let name = n.Spec.Concrete.name in
      match Pkg.Repo.find repo name with
      | None -> add name "unknown-package" "not defined in the repository"
      | Some pkg ->
        (* version declared *)
        if
          (not (Pkg.Package.has_version pkg n.Spec.Concrete.version))
          && not allow_reused_versions
        then
          add name "undeclared-version" "version %s is not declared"
            (Vers.Version.to_string n.Spec.Concrete.version);
        (* variants declared and legal *)
        Spec.Types.Smap.iter
          (fun var value ->
            match
              List.find_opt
                (fun (v : Pkg.Package.variant_decl) -> v.Pkg.Package.v_name = var)
                pkg.Pkg.Package.variants
            with
            | None -> add name "undeclared-variant" "variant %s is not declared" var
            | Some decl -> (
              match (decl.Pkg.Package.v_values, value) with
              | Some allowed, Spec.Types.Str s when not (List.mem s allowed) ->
                add name "illegal-variant-value" "%s=%s not in {%s}" var s
                  (String.concat "," allowed)
              | Some allowed, Spec.Types.Bool b
                when not (List.mem (if b then "True" else "False") allowed) ->
                add name "illegal-variant-value" "%s=%b not allowed" var b
              | _ -> ()))
          n.Spec.Concrete.variants;
        (* dependency directives with satisfied conditions *)
        List.iter
          (fun (d : Pkg.Package.dep_decl) ->
            if node_matches_when n d.Pkg.Package.d_when then
              if not (dep_satisfied ~repo spec name d) then
                (* Relinked or reused nodes legitimately shed build-only
                   dependencies (4.1). *)
                let build_only = not d.Pkg.Package.d_types.Spec.Types.link in
                if not (build_only && n.Spec.Concrete.build_hash <> None) then
                  add name "missing-dependency" "directive %s unsatisfied"
                    (Spec.Abstract.to_string d.Pkg.Package.d_spec))
          pkg.Pkg.Package.dependencies;
        (* conflicts *)
        List.iter
          (fun (c : Pkg.Package.conflict_decl) ->
            if
              node_matches_when n c.Pkg.Package.c_when
              && Spec.Concrete.node_satisfies n c.Pkg.Package.c_spec
            then
              add name "conflict" "forbidden configuration %s holds"
                (Format.asprintf "%a" Spec.Abstract.pp_node c.Pkg.Package.c_spec))
          pkg.Pkg.Package.conflicts;
        (* arch *)
        if not (String.equal n.Spec.Concrete.os host_os) then
          add name "os-mismatch" "%s vs host %s" n.Spec.Concrete.os host_os;
        if
          not
            (Spec.Targets.compatible ~binary:n.Spec.Concrete.target ~host:host_target)
        then
          add name "target-incompatible" "%s does not run on %s" n.Spec.Concrete.target
            host_target)
    nodes;
  (* one provider per virtual *)
  let providers_present =
    List.concat_map
      (fun (n : Spec.Concrete.node) ->
        match Pkg.Repo.find repo n.Spec.Concrete.name with
        | None -> []
        | Some p ->
          List.map
            (fun (pr : Pkg.Package.provide_decl) ->
              (pr.Pkg.Package.p_virtual, n.Spec.Concrete.name))
            p.Pkg.Package.provides)
      nodes
  in
  List.iter
    (fun (virt, _) ->
      let all = List.filter (fun (v, _) -> v = virt) providers_present in
      if List.length all > 1 then
        add (Spec.Concrete.root spec) "multiple-providers" "%s provided by {%s}" virt
          (String.concat "," (List.map snd all)))
    (List.sort_uniq compare providers_present);
  (* the request *)
  (match request with
  | Some r when not (Spec.Concrete.satisfies spec r) ->
    add (Spec.Concrete.root spec) "request-unsatisfied" "%s"
      (Spec.Abstract.to_string r)
  | _ -> ());
  List.rev !violations
