(** Automatic ABI discovery — the paper's future work (§8):
    "In the future, we will develop methods for automating ABI
    discovery for the Spack ecosystem in order to reduce developer
    burden."

    Instead of package developers hand-writing [can_splice]
    directives, this module inspects the {e actual binaries} in a
    store or buildcache: for every pair of installed specs that could
    stand in for each other (same package, or providers of the same
    virtual), it compares the exported ABI surfaces — symbol digests
    and type layouts — and suggests [can_splice] directives exactly
    when the replacement's surface serves every consumer of the
    target's (superset with identical layouts).

    The suggestions are conservative by construction: they are derived
    from the compiled artifacts, not the API, so an Open-MPI-style
    opaque-layout divergence (§2.1) is never suggested. *)

type suggestion = {
  replacement : string;  (** package that can stand in *)
  replacement_version : Vers.Version.t;
  target : string;  (** package being replaced *)
  target_version : Vers.Version.t;
  exact : bool;  (** surfaces identical (vs. strict superset) *)
}

val scan :
  repo:Pkg.Repo.t -> specs:Spec.Concrete.t list -> store:Binary.Store.t -> suggestion list
(** Compare the installed binaries of the given specs pairwise.
    Candidate pairs: same package name at different hashes, or two
    providers of a common virtual. Suggestions are deduplicated and
    sorted. *)

val to_directive : suggestion -> string
(** Render as the DSL call, e.g.
    ["can_splice \"mpich@3.4.3\" ~when_:\"@=1.0\""]. *)

val apply : Pkg.Repo.t -> suggestion list -> Pkg.Repo.t
(** Install the discovered directives into the repository's package
    definitions, so the concretizer can use them. *)
