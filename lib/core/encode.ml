open Asp.Ast
module T = Asp.Term

type encoding = Old | Hash_attr

type request = {
  req : Spec.Abstract.t;
  forbid : string list;
}

let request_of_string ?(forbid = []) s = { req = Spec.Parser.parse s; forbid }

type reuse_pool = { by_hash : (string, Spec.Concrete.t) Hashtbl.t }

let pool_of_specs specs =
  let by_hash = Hashtbl.create 256 in
  List.iter
    (fun spec ->
      List.iter
        (fun (n : Spec.Concrete.node) ->
          let h = Spec.Concrete.node_hash spec n.Spec.Concrete.name in
          if not (Hashtbl.mem by_hash h) then
            Hashtbl.replace by_hash h (Spec.Concrete.subdag spec n.Spec.Concrete.name))
        (Spec.Concrete.nodes spec))
    specs;
  { by_hash }

let pool_size pool = Hashtbl.length pool.by_hash

type t = {
  facts : statement list;
  rules : statement list;
  pool : reuse_pool;
  pool_total : int;
}

(* Term shorthands. Constants go through the interner: package names
   and hashes recur across thousands of facts, and interned terms make
   the grounder's joins pointer comparisons. *)
let str s = T.str s
let node_t p = T.App ("node", [ T.str p ])
let f name args = fact (atom name args)

let vstr v = Vers.Version.to_string v

(* ---- the version universe -------------------------------------- *)

(* Collect every version any package is known at: declarations plus
   versions appearing in reusable specs. Range constraints are
   precompiled against this. *)
let version_universe ~repo ~pool =
  let tbl : (string, Vers.Version.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let add p v =
    match Hashtbl.find_opt tbl p with
    | Some l -> if not (List.exists (Vers.Version.equal v) !l) then l := v :: !l
    | None -> Hashtbl.add tbl p (ref [ v ])
  in
  List.iter
    (fun (pkg : Pkg.Package.t) ->
      List.iter (add pkg.Pkg.Package.name) pkg.Pkg.Package.versions)
    (Pkg.Repo.packages repo);
  Hashtbl.iter
    (fun _ spec ->
      let n = Spec.Concrete.root_node spec in
      add n.Spec.Concrete.name n.Spec.Concrete.version)
    pool.by_hash;
  tbl

let versions_of universe p =
  match Hashtbl.find_opt universe p with Some l -> !l | None -> []

let versions_satisfying universe p range =
  List.filter (fun v -> Vers.Range.satisfies v range) (versions_of universe p)

(* A version hook: a place where a version range was precompiled
   against the version universe. The layered encoding grounds the base
   against the declared universe only and re-runs each hook against
   pool-only versions when a buildcache entry arrives, so the base
   layer never depends on pool contents. *)
type hook = {
  hk_pred : string;  (* cond_version_ok | dep_version_ok | splice_*_version_ok *)
  hk_id : string;  (* condition or splice id, the fact's first argument *)
  hk_pkg : string;  (* package whose versions the range tests *)
  hk_range : Vers.Range.t;
}

let note_hook hooks pred id pkg range =
  match hooks with
  | None -> ()
  | Some acc -> acc := { hk_pred = pred; hk_id = id; hk_pkg = pkg; hk_range = range } :: !acc

(* ---- package facts ---------------------------------------------- *)

let bool_values = [ "True"; "False" ]

let encode_variant_decl pname (v : Pkg.Package.variant_decl) =
  let values =
    match v.Pkg.Package.v_values with Some vs -> vs | None -> bool_values
  in
  f "variant_decl" [ str pname; str v.Pkg.Package.v_name ]
  :: f "variant_default"
       [ str pname;
         str v.Pkg.Package.v_name;
         str (Spec.Types.variant_value_to_string v.Pkg.Package.v_default) ]
  :: List.map
       (fun value ->
         f "variant_possible" [ str pname; str v.Pkg.Package.v_name; str value ])
       values

(* Conditions: every directive with a [when] becomes a condition id
   with requirements; unconditional directives get a condition whose
   only requirement is the node's presence (§5.1.1). Condition ids are
   drawn from a per-encode counter, not a global: batch concretization
   encodes in parallel domains. *)
let fresh_cond counter =
  incr counter;
  Printf.sprintf "c%d" !counter

let encode_when ?hooks universe pname (w : Spec.Abstract.node option) cid =
  let base = [ f "condition_requirement" [ str cid; str "node"; str pname ] ] in
  match w with
  | None -> base
  | Some n ->
    let version_reqs =
      if Vers.Range.is_any n.Spec.Abstract.version then []
      else begin
        note_hook hooks "cond_version_ok" cid pname n.Spec.Abstract.version;
        f "condition_requirement" [ str cid; str "version_ok"; str pname ]
        :: List.map
             (fun v -> f "cond_version_ok" [ str cid; str (vstr v) ])
             (versions_satisfying universe pname n.Spec.Abstract.version)
      end
    in
    let variant_reqs =
      Spec.Types.Smap.fold
        (fun var value acc ->
          f "condition_requirement"
            [ str cid; str "variant"; str pname; str var;
              str (Spec.Types.variant_value_to_string value) ]
          :: acc)
        n.Spec.Abstract.variants []
    in
    base @ version_reqs @ variant_reqs

let deptype_atoms (dt : Spec.Types.deptypes) =
  (if dt.Spec.Types.link then [ "link" ] else [])
  @ if dt.Spec.Types.build then [ "build" ] else []

let encode_dependency ?hooks cond universe pname (d : Pkg.Package.dep_decl) =
  let cid = fresh_cond cond in
  let dname = d.Pkg.Package.d_spec.Spec.Abstract.root.Spec.Abstract.name in
  let droot = d.Pkg.Package.d_spec.Spec.Abstract.root in
  let base =
    (f "condition" [ str cid ]
    :: encode_when ?hooks universe pname d.Pkg.Package.d_when cid)
    @ List.map
        (fun dt -> f "imposed_dep" [ str cid; str pname; str dname; str dt ])
        (deptype_atoms d.Pkg.Package.d_types)
  in
  let version_constraint =
    if Vers.Range.is_any droot.Spec.Abstract.version then []
    else begin
      note_hook hooks "dep_version_ok" cid dname droot.Spec.Abstract.version;
      f "dep_req_version" [ str cid; str dname ]
      :: List.map
           (fun v -> f "dep_version_ok" [ str cid; str (vstr v) ])
           (versions_satisfying universe dname droot.Spec.Abstract.version)
    end
  in
  let variant_constraints =
    Spec.Types.Smap.fold
      (fun var value acc ->
        f "dep_req_variant"
          [ str cid; str dname; str var;
            str (Spec.Types.variant_value_to_string value) ]
        :: acc)
      droot.Spec.Abstract.variants []
  in
  base @ version_constraint @ variant_constraints

let encode_conflict ?hooks cond universe pname (c : Pkg.Package.conflict_decl) =
  let cid = fresh_cond cond in
  (* The conflict fires when both the when-condition and the conflicting
     configuration hold: merge both into the requirements. *)
  let merged =
    match c.Pkg.Package.c_when with
    | None -> Some c.Pkg.Package.c_spec
    | Some w -> Spec.Abstract.node_intersect w c.Pkg.Package.c_spec
  in
  match merged with
  | None -> [] (* contradictory condition can never fire *)
  | Some m ->
    (f "condition" [ str cid ] :: encode_when ?hooks universe pname (Some m) cid)
    @ [ f "imposed_conflict" [ str cid ] ]

let encode_package ?hooks cond universe (pkg : Pkg.Package.t) =
  let pname = pkg.Pkg.Package.name in
  let versions =
    List.concat
      (List.mapi
         (fun i v ->
           [ f "version_decl" [ str pname; str (vstr v) ];
             f "version_weight" [ str pname; str (vstr v); T.Int i ] ])
         pkg.Pkg.Package.versions)
  in
  versions
  @ List.concat_map (encode_variant_decl pname) pkg.Pkg.Package.variants
  @ List.concat_map
      (encode_dependency ?hooks cond universe pname)
      pkg.Pkg.Package.dependencies
  @ List.concat_map
      (fun (p : Pkg.Package.provide_decl) ->
        [ f "provides" [ str pname; str p.Pkg.Package.p_virtual ];
          f "virtual" [ str p.Pkg.Package.p_virtual ] ])
      pkg.Pkg.Package.provides
  @ List.concat_map (encode_conflict ?hooks cond universe pname) pkg.Pkg.Package.conflicts

(* Versions present only in the reuse pool still need version_decl /
   version_weight facts so the choice rule can select them; they rank
   after all declared versions. *)
let encode_pool_versions ~repo universe =
  Hashtbl.fold
    (fun p versions acc ->
      let declared =
        match Pkg.Repo.find repo p with
        | Some pkg -> pkg.Pkg.Package.versions
        | None -> []
      in
      List.fold_left
        (fun acc v ->
          if List.exists (Vers.Version.equal v) declared then acc
          else
            f "version_decl" [ str p; str (vstr v) ]
            :: f "version_weight" [ str p; str (vstr v); T.Int 20 ]
            :: acc)
        acc !versions)
    universe []

(* ---- user requests ---------------------------------------------- *)

let encode_node_constraints universe ~prefix name (n : Spec.Abstract.node) =
  let version =
    if Vers.Range.is_any n.Spec.Abstract.version then []
    else
      f (prefix ^ "_version_req") [ str name ]
      :: List.map
           (fun v -> f (prefix ^ "_version_ok") [ str name; str (vstr v) ])
           (versions_satisfying universe name n.Spec.Abstract.version)
  in
  let variants =
    Spec.Types.Smap.fold
      (fun var value acc ->
        f (prefix ^ "_variant")
          [ str name; str var; str (Spec.Types.variant_value_to_string value) ]
        :: acc)
      n.Spec.Abstract.variants []
  in
  version @ variants

let encode_request universe (r : request) =
  let root = r.req.Spec.Abstract.root in
  let rname = root.Spec.Abstract.name in
  (fact { pred = "attr"; args = [ str "root"; node_t rname ] }
  :: encode_node_constraints universe ~prefix:"user" rname root)
  @ List.concat_map
      (fun (d : Spec.Abstract.dep) ->
        let dname = d.Spec.Abstract.node.Spec.Abstract.name in
        f "user_dep" [ str rname; str dname ]
        :: encode_node_constraints universe ~prefix:"user_dep" dname d.Spec.Abstract.node)
      r.req.Spec.Abstract.deps
  @ List.map (fun p -> f "user_forbid" [ str p ]) r.forbid

(* ---- reusable specs --------------------------------------------- *)

(* Attribute tuples shared by both encodings; the predicate differs
   (imposed_constraint directly, or hash_attr + recovery rules). Every
   argument is a constant string, so the columnar pool layer can pack
   the same tuples as interned ids. *)
let entry_tuples h spec =
  let n = Spec.Concrete.root_node spec in
  let p = n.Spec.Concrete.name in
  let base =
    [ [ h; "version"; p; vstr n.Spec.Concrete.version ];
      [ h; "node_os"; p; n.Spec.Concrete.os ];
      [ h; "node_target"; p; n.Spec.Concrete.target ] ]
  in
  let variants =
    Spec.Types.Smap.fold
      (fun var value acc ->
        [ h; "variant"; p; var; Spec.Types.variant_value_to_string value ] :: acc)
      n.Spec.Concrete.variants []
  in
  let deps =
    List.concat_map
      (fun (c, (dt : Spec.Types.deptypes)) ->
        if not dt.Spec.Types.link then []
        else
          [ [ h; "depends_on"; p; c; "link" ];
            [ h; "hash"; c; Spec.Concrete.node_hash spec c ] ])
      (Spec.Concrete.children spec p)
  in
  (p, base @ variants @ deps)

let reusable_tuples pool =
  Hashtbl.fold
    (fun h spec acc ->
      let p, tuples = entry_tuples h spec in
      (h, p, tuples) :: acc)
    pool.by_hash []

(* Child hashes some entry imposes whose own sub-DAG is not an installed
   candidate. [pool_of_specs] closes pools over sub-DAGs, so this is
   empty for pools built there; an externally indexed buildcache can
   hold a parent without its child, and the linear at-most-one encoding
   (the stray_hash constraint in {!Program}) needs those pairs called
   out. Deterministic order: entries by hash, children in DAG order. *)
let stray_hashes pool =
  let seen = Hashtbl.create 16 in
  let strays = ref [] in
  let hashes =
    Hashtbl.fold (fun h _ acc -> h :: acc) pool.by_hash []
    |> List.sort String.compare
  in
  List.iter
    (fun h ->
      let spec = Hashtbl.find pool.by_hash h in
      let p = (Spec.Concrete.root_node spec).Spec.Concrete.name in
      List.iter
        (fun (c, (dt : Spec.Types.deptypes)) ->
          if dt.Spec.Types.link then begin
            let ch = Spec.Concrete.node_hash spec c in
            let installed =
              match Hashtbl.find_opt pool.by_hash ch with
              | Some s ->
                String.equal (Spec.Concrete.root_node s).Spec.Concrete.name c
              | None -> false
            in
            if (not installed) && not (Hashtbl.mem seen (c, ch)) then begin
              Hashtbl.replace seen (c, ch) ();
              strays := (c, ch) :: !strays
            end
          end)
        (Spec.Concrete.children spec p))
    hashes;
  List.rev !strays

let encode_reusable ~encoding pool =
  let pred = match encoding with Old -> "imposed_constraint" | Hash_attr -> "hash_attr" in
  List.concat_map
    (fun (h, p, tuples) ->
      f "installed_hash" [ str p; str h ]
      :: List.map (fun args -> f pred (List.map str args)) tuples)
    (reusable_tuples pool)
  @ List.map (fun (c, ch) -> f "stray_hash" [ str c; str ch ]) (stray_hashes pool)

(* ---- can_splice rules (Fig. 4a) ---------------------------------- *)

(* One rule per directive:
   can_splice(node(S), T, Hash) :-
     installed_hash(T, Hash), attr("node", node(S)),
     <when-conditions over node(S)>, <target conditions over hash_attr>. *)
let encode_can_splice ?hooks scounter universe (pkg : Pkg.Package.t)
    (s : Pkg.Package.splice_decl) =
  incr scounter;
  let sid = Printf.sprintf "s%d" !scounter in
  let sname = pkg.Pkg.Package.name in
  let target = s.Pkg.Package.s_target.Spec.Abstract.root in
  let tname = target.Spec.Abstract.name in
  let hash = T.Var "Hash" in
  let facts = ref [] in
  let when_body =
    let w = s.Pkg.Package.s_when in
    let version =
      if Vers.Range.is_any w.Spec.Abstract.version then []
      else begin
        note_hook hooks "splice_when_version_ok" sid sname w.Spec.Abstract.version;
        facts :=
          List.map
            (fun v -> f "splice_when_version_ok" [ str sid; str (vstr v) ])
            (versions_satisfying universe sname w.Spec.Abstract.version)
          @ !facts;
        [ Pos (atom "attr" [ str "version"; node_t sname; T.Var "Vw" ]);
          Pos (atom "splice_when_version_ok" [ str sid; T.Var "Vw" ]) ]
      end
    in
    let variants =
      Spec.Types.Smap.fold
        (fun var value acc ->
          Pos
            (atom "attr"
               [ str "variant_value"; node_t sname; str var;
                 str (Spec.Types.variant_value_to_string value) ])
          :: acc)
        w.Spec.Abstract.variants []
    in
    version @ variants
  in
  let target_body =
    let version =
      if Vers.Range.is_any target.Spec.Abstract.version then []
      else begin
        note_hook hooks "splice_target_version_ok" sid tname
          target.Spec.Abstract.version;
        facts :=
          List.map
            (fun v -> f "splice_target_version_ok" [ str sid; str (vstr v) ])
            (versions_satisfying universe tname target.Spec.Abstract.version)
          @ !facts;
        [ Pos (atom "hash_attr" [ hash; str "version"; str tname; T.Var "Vt" ]);
          Pos (atom "splice_target_version_ok" [ str sid; T.Var "Vt" ]) ]
      end
    in
    let variants =
      Spec.Types.Smap.fold
        (fun var value acc ->
          Pos
            (atom "hash_attr"
               [ hash; str "variant"; str tname; str var;
                 str (Spec.Types.variant_value_to_string value) ])
          :: acc)
        target.Spec.Abstract.variants []
    in
    version @ variants
  in
  let rule =
    Rule
      { head = Head_atom (atom "can_splice" [ node_t sname; str tname; hash ]);
        body =
          Pos (atom "installed_hash" [ str tname; hash ])
          :: Pos (atom "attr" [ str "node"; node_t sname ])
          :: (when_body @ target_body) }
  in
  (rule, !facts)

(* ---- reuse-pool pruning ------------------------------------------- *)

(* The dependency closure of a set of root package names: every package
   whose [attr("node", node(P))] atom the grounder could possibly
   derive for a request rooted there. Expansion follows
   - every dependency directive, unconditionally (phase 1 of the
     grounder ignores when-conditions the same way),
   - virtual names to all their providers (the provider choice rule),
   - [can_splice] directives of a closure package S to their target T
     (a can_splice rule only fires when node(S) is already possible,
     and then makes T's installed specs selectable), and
   - reusable sub-DAGs rooted at a closure package to every node they
     impose (a chosen hash imposes its children even if the current
     repo no longer reaches them). *)
let closure ~repo ~splicing ~pool roots =
  let pool_by_name : (string, Spec.Concrete.t list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ spec ->
      let n = (Spec.Concrete.root_node spec).Spec.Concrete.name in
      match Hashtbl.find_opt pool_by_name n with
      | Some l -> l := spec :: !l
      | None -> Hashtbl.add pool_by_name n (ref [ spec ]))
    pool.by_hash;
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      Queue.add n queue
    end
  in
  List.iter add roots;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter (fun (q : Pkg.Package.t) -> add q.Pkg.Package.name) (Pkg.Repo.providers repo n);
    (match Pkg.Repo.find repo n with
    | None -> ()
    | Some pkg ->
      List.iter
        (fun (d : Pkg.Package.dep_decl) ->
          add d.Pkg.Package.d_spec.Spec.Abstract.root.Spec.Abstract.name)
        pkg.Pkg.Package.dependencies;
      if splicing then
        List.iter
          (fun (s : Pkg.Package.splice_decl) ->
            add s.Pkg.Package.s_target.Spec.Abstract.root.Spec.Abstract.name)
          pkg.Pkg.Package.splices);
    match Hashtbl.find_opt pool_by_name n with
    | None -> ()
    | Some specs ->
      List.iter
        (fun spec ->
          List.iter
            (fun (node : Spec.Concrete.node) -> add node.Spec.Concrete.name)
            (Spec.Concrete.nodes spec))
        !specs
  done;
  seen

(* ---- top level ---------------------------------------------------- *)

(* Provider weights rank a virtual's full provider list, so pruning
   must keep the list (and hence the indices) intact: it only drops
   virtuals no closure package provides — all providers of a virtual
   that is actually requirable lie in the closure by construction. *)
let provider_weight_facts ~repo packages =
  let virtuals =
    List.concat_map
      (fun (p : Pkg.Package.t) ->
        List.map (fun (pr : Pkg.Package.provide_decl) -> pr.Pkg.Package.p_virtual)
          p.Pkg.Package.provides)
      packages
    |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun v ->
      List.mapi
        (fun i (q : Pkg.Package.t) ->
          f "provider_weight" [ str q.Pkg.Package.name; str v; T.Int i ])
        (Pkg.Repo.providers repo v))
    virtuals

(* Binaries built for the host's target or any of its ancestors are
   deployable here (microarchitecture compatibility). *)
let target_ok_facts host_target =
  List.map (fun t -> f "target_ok" [ str t ]) (Spec.Targets.ancestors host_target)

(* Everything request-independent: package facts (closure-filtered when
   pruning), the reusable pool, splice rules, provider weights, host
   facts. *)
type base = {
  b_facts : statement list;
  b_rules : statement list;
  b_pool : reuse_pool;
  b_pool_total : int;
  b_universe : (string, Vers.Version.t list ref) Hashtbl.t;
  b_packages : Pkg.Package.t list;  (* closure packages, sorted *)
  b_closure : (string, unit) Hashtbl.t option;  (* None when not pruning *)
}

let encode_base ~obs ~repo ~encoding ~splicing ~reuse ~prune ~closure_hint
    ~host_os ~host_target ~roots =
  let cond = ref 0 in
  let scounter = ref 0 in
  let full_pool = pool_of_specs reuse in
  let pool_total = pool_size full_pool in
  let keep =
    if prune then
      match closure_hint with
      | Some cl ->
        (* Precomputed (typically cached by the solve server, keyed on
           roots + pool digest). The caller owns its correctness; a
           stale hint would silently unprune or overprune. *)
        Obs.incr obs "encode.closure_cache_hits";
        Some cl
      | None ->
        Some
          (Obs.with_span obs ~cat:"encode" "encode.closure" (fun sp ->
               let cl = closure ~repo ~splicing ~pool:full_pool roots in
               Obs.set_attr sp "pool_total" (Obs.I pool_total);
               Obs.set_attr sp "closure_packages" (Obs.I (Hashtbl.length cl));
               cl))
    else None
  in
  let in_closure name =
    match keep with None -> true | Some cl -> Hashtbl.mem cl name
  in
  let pool =
    match keep with
    | None -> full_pool
    | Some cl ->
      let by_hash = Hashtbl.create 256 in
      Hashtbl.iter
        (fun h spec ->
          if Hashtbl.mem cl (Spec.Concrete.root_node spec).Spec.Concrete.name then
            Hashtbl.replace by_hash h spec)
        full_pool.by_hash;
      { by_hash }
  in
  let universe = version_universe ~repo ~pool in
  let packages =
    List.filter
      (fun (p : Pkg.Package.t) -> in_closure p.Pkg.Package.name)
      (Pkg.Repo.packages repo)
  in
  let package_facts = List.concat_map (encode_package cond universe) packages in
  let splice_rules, splice_facts =
    if splicing then begin
      if encoding = Old then
        invalid_arg "encode: splicing requires the hash_attr encoding (§5.3)";
      List.fold_left
        (fun (rules, facts) (pkg : Pkg.Package.t) ->
          List.fold_left
            (fun (rules, facts) decl ->
              let r, fs = encode_can_splice scounter universe pkg decl in
              (r :: rules, fs @ facts))
            (rules, facts) pkg.Pkg.Package.splices)
        ([], []) packages
    end
    else ([], [])
  in
  let provider_weights = provider_weight_facts ~repo packages in
  let target_facts = target_ok_facts host_target in
  let facts =
    (f "host_os" [ str host_os ] :: f "host_target" [ str host_target ] :: package_facts)
    @ target_facts
    @ provider_weights
    @ encode_pool_versions ~repo universe
    @ encode_reusable ~encoding pool
    @ splice_facts
  in
  Obs.gauge obs "encode.pool_total" pool_total;
  Obs.gauge obs "encode.pool_kept" (pool_size pool);
  { b_facts = facts;
    b_rules = splice_rules;
    b_pool = pool;
    b_pool_total = pool_total;
    b_universe = universe;
    b_packages = packages;
    b_closure = keep }

let encode ~repo ~encoding ~splicing ~reuse ?(prune = false) ?closure
    ?(obs = Obs.disabled) ~host_os ~host_target requests =
  let roots =
    List.map
      (fun (r : request) -> r.req.Spec.Abstract.root.Spec.Abstract.name)
      requests
  in
  let b =
    encode_base ~obs ~repo ~encoding ~splicing ~reuse ~prune ~closure_hint:closure
      ~host_os ~host_target ~roots
  in
  { facts = b.b_facts @ List.concat_map (encode_request b.b_universe) requests;
    rules = b.b_rules;
    pool = b.b_pool;
    pool_total = b.b_pool_total }

(* ---- incremental sessions ----------------------------------------- *)

type session_env = {
  se_roots : string list;
  se_names : string list;
  se_versions : (string * Vers.Version.t list) list;
  se_variants : ((string * string) * string list) list;
}

let session_unsat_atom = atom "session_unsat" []

let encode_session ~repo ~encoding ~splicing ~reuse ?(prune = true) ?closure
    ?(obs = Obs.disabled) ~host_os ~host_target ~roots () =
  let roots = List.sort_uniq String.compare roots in
  let b =
    encode_base ~obs ~repo ~encoding ~splicing ~reuse ~prune ~closure_hint:closure
      ~host_os ~host_target ~roots
  in
  let names =
    (* Every package name whose facts were emitted, plus every name the
       closure touched (virtuals, pool-only packages): the domain of
       [req_dep]/[forbid_pkg]. *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (p : Pkg.Package.t) -> Hashtbl.replace tbl p.Pkg.Package.name ())
      b.b_packages;
    (match b.b_closure with
    | Some cl -> Hashtbl.iter (fun n () -> Hashtbl.replace tbl n ()) cl
    | None ->
      List.iter
        (fun (p : Pkg.Package.t) ->
          List.iter
            (fun (pr : Pkg.Package.provide_decl) ->
              Hashtbl.replace tbl pr.Pkg.Package.p_virtual ())
            p.Pkg.Package.provides)
        b.b_packages);
    Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort String.compare
  in
  let versions =
    (* The [version_decl] domain per package: declared versions plus
       pool-only ones — exactly what the emitted facts cover. *)
    List.map
      (fun (p : Pkg.Package.t) ->
        (p.Pkg.Package.name, versions_of b.b_universe p.Pkg.Package.name))
      b.b_packages
  in
  let variants =
    List.concat_map
      (fun (p : Pkg.Package.t) ->
        List.map
          (fun (v : Pkg.Package.variant_decl) ->
            let values =
              match v.Pkg.Package.v_values with Some vs -> vs | None -> bool_values
            in
            ((p.Pkg.Package.name, v.Pkg.Package.v_name), values))
          p.Pkg.Package.variants)
      b.b_packages
  in
  let env =
    { se_roots = roots; se_names = names; se_versions = versions;
      se_variants = variants }
  in
  let session_facts =
    List.map (fun p -> f "possible_root" [ str p ]) roots
    @ List.map (fun n -> f "known_name" [ str n ]) names
  in
  ( { facts = b.b_facts @ session_facts;
      rules = b.b_rules;
      pool = b.b_pool;
      pool_total = b.b_pool_total },
    env )

let assumptions_for env (r : request) =
  let root = r.req.Spec.Abstract.root in
  let rname = root.Spec.Abstract.name in
  if not (List.mem rname env.se_roots) then
    Error
      (Printf.sprintf
         "session does not cover root %s (declared roots: %s)" rname
         (String.concat ", " env.se_roots))
  else begin
    (* Per-package constraints of this request: the root's own, plus
       each named dependency's. *)
    let constraints =
      (rname, root)
      :: List.map
           (fun (d : Spec.Abstract.dep) ->
             (d.Spec.Abstract.node.Spec.Abstract.name, d.Spec.Abstract.node))
           r.req.Spec.Abstract.deps
    in
    let dep_names = List.map fst (List.tl constraints) in
    let impossible = ref false in
    let root_assumes =
      List.map
        (fun p -> (atom "root_on" [ str p ], String.equal p rname))
        env.se_roots
    in
    let req_assumes =
      List.map
        (fun d -> (atom "req_dep" [ str d ], List.mem d dep_names))
        env.se_names
      (* A requested dependency outside the session universe: the atom
         does not exist, and assuming a nonexistent atom true is how a
         session expresses honest UNSAT. *)
      @ List.filter_map
          (fun d ->
            if List.mem d env.se_names then None
            else Some (atom "req_dep" [ str d ], true))
          dep_names
    in
    let forbid_assumes =
      (* Forbidding a name the universe cannot even produce is vacuous,
         so names outside [se_names] are simply dropped. *)
      List.map
        (fun p -> (atom "forbid_pkg" [ str p ], List.mem p r.forbid))
        env.se_names
    in
    let version_assumes =
      List.concat_map
        (fun (p, vs) ->
          let range =
            match List.assoc_opt p constraints with
            | Some (n : Spec.Abstract.node) when not (Vers.Range.is_any n.Spec.Abstract.version) ->
              Some n.Spec.Abstract.version
            | _ -> None
          in
          List.map
            (fun v ->
              let forbidden =
                match range with
                | None -> false
                | Some rg -> not (Vers.Range.satisfies v rg)
              in
              (atom "forbid_version" [ str p; str (vstr v) ], forbidden))
            vs)
        env.se_versions
    in
    let variant_assumes =
      List.concat_map
        (fun ((p, var), values) ->
          let want =
            match List.assoc_opt p constraints with
            | Some (n : Spec.Abstract.node) ->
              Spec.Types.Smap.find_opt var n.Spec.Abstract.variants
            | None -> None
          in
          match want with
          | None ->
            List.map
              (fun v -> (atom "forbid_variant" [ str p; str var; str v ], false))
              values
          | Some value ->
            let vs = Spec.Types.variant_value_to_string value in
            if not (List.mem vs values) then begin
              (* Requested value is not a possible value: the fresh
                 path's user_variant constraint makes this UNSAT. *)
              impossible := true;
              []
            end
            else
              List.map
                (fun v ->
                  (atom "forbid_variant" [ str p; str var; str v ],
                   not (String.equal v vs)))
                values)
        env.se_variants
    in
    (* A variant constraint on a package that does not declare the
       variant at all is UNSAT on the fresh path too (the node must
       exist — it is the root or a required dep — and can never carry
       the value). *)
    List.iter
      (fun (p, (n : Spec.Abstract.node)) ->
        Spec.Types.Smap.iter
          (fun var _ ->
            if
              not
                (List.exists
                   (fun ((p', var'), _) -> String.equal p p' && String.equal var var')
                   env.se_variants)
            then impossible := true)
          n.Spec.Abstract.variants)
      constraints;
    if !impossible then Ok [ (session_unsat_atom, true) ]
    else
      Ok
        (root_assumes @ req_assumes @ forbid_assumes @ version_assumes
       @ variant_assumes)
  end

(* ---- layered (delta) encoding ------------------------------------- *)

(* The session encoding above is monolithic: package facts are
   precompiled against the full version universe (declared plus pool
   versions), so any buildcache change invalidates everything. The
   layered encoding splits that into a pool-independent base — package
   facts against the declared universe only, with every range
   precompilation recorded as a {!hook} — plus per-entry fact groups
   the delta grounder ({!Asp.Ground.layered_update}) can apply and
   retract one buildcache entry at a time:

   - group [h:HASH]: [installed_hash] + attribute tuples of one
     reusable sub-DAG;
   - group [v:PKG@VER]: [version_decl]/[version_weight 20] for a
     version only the pool knows, plus every hook fact that version
     satisfies — exactly what the monolithic encode would have emitted
     had the version been in its universe.

   Base + groups over pool P is fact-for-fact the unpruned session
   encode over P (condition ids are allocated by the same traversal,
   so they coincide). *)

type layered_base = {
  lb_repo : Pkg.Repo.t;
  lb_encoding : encoding;
  lb_splicing : bool;
  lb_facts : statement list;  (* pool-independent facts *)
  lb_rules : statement list;  (* can_splice rules *)
  lb_hooks : hook list;
  lb_packages : Pkg.Package.t list;
  lb_roots : string list;
  lb_names : string list;
  lb_variants : ((string * string) * string list) list;
}

let encode_layered_base ~repo ~encoding ~splicing ?(obs = Obs.disabled)
    ~host_os ~host_target ~roots () =
  Obs.with_span obs ~cat:"encode" "encode.layered_base" @@ fun _span ->
  let roots = List.sort_uniq String.compare roots in
  let cond = ref 0 in
  let scounter = ref 0 in
  let hooks = ref [] in
  let universe = version_universe ~repo ~pool:{ by_hash = Hashtbl.create 1 } in
  let packages = Pkg.Repo.packages repo in
  let package_facts =
    List.concat_map (encode_package ~hooks cond universe) packages
  in
  let splice_rules, splice_facts =
    if splicing then begin
      if encoding = Old then
        invalid_arg "encode: splicing requires the hash_attr encoding (§5.3)";
      List.fold_left
        (fun (rules, facts) (pkg : Pkg.Package.t) ->
          List.fold_left
            (fun (rules, facts) decl ->
              let r, fs = encode_can_splice ~hooks scounter universe pkg decl in
              (r :: rules, fs @ facts))
            (rules, facts) pkg.Pkg.Package.splices)
        ([], []) packages
    end
    else ([], [])
  in
  let names =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (p : Pkg.Package.t) ->
        Hashtbl.replace tbl p.Pkg.Package.name ();
        List.iter
          (fun (pr : Pkg.Package.provide_decl) ->
            Hashtbl.replace tbl pr.Pkg.Package.p_virtual ())
          p.Pkg.Package.provides)
      packages;
    Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort String.compare
  in
  let variants =
    List.concat_map
      (fun (p : Pkg.Package.t) ->
        List.map
          (fun (v : Pkg.Package.variant_decl) ->
            let values =
              match v.Pkg.Package.v_values with Some vs -> vs | None -> bool_values
            in
            ((p.Pkg.Package.name, v.Pkg.Package.v_name), values))
          p.Pkg.Package.variants)
      packages
  in
  let session_facts =
    List.map (fun p -> f "possible_root" [ str p ]) roots
    @ List.map (fun n -> f "known_name" [ str n ]) names
  in
  let facts =
    (f "host_os" [ str host_os ] :: f "host_target" [ str host_target ]
   :: package_facts)
    @ target_ok_facts host_target
    @ provider_weight_facts ~repo packages
    @ splice_facts @ session_facts
  in
  { lb_repo = repo;
    lb_encoding = encoding;
    lb_splicing = splicing;
    lb_facts = facts;
    lb_rules = splice_rules;
    lb_hooks = List.rev !hooks;
    lb_packages = packages;
    lb_roots = roots;
    lb_names = names;
    lb_variants = variants }

let pool_groups ?(obs = Obs.disabled) lb pool =
  Obs.with_span obs ~cat:"encode" "encode.pool_groups" @@ fun _span ->
  let fs = Asp.Factstore.create () in
  let pred =
    match lb.lb_encoding with Old -> "imposed_constraint" | Hash_attr -> "hash_attr"
  in
  let hashes =
    Hashtbl.fold (fun h _ acc -> h :: acc) pool.by_hash []
    |> List.sort String.compare
  in
  List.iter
    (fun h ->
      let spec = Hashtbl.find pool.by_hash h in
      let p, tuples = entry_tuples h spec in
      Asp.Factstore.add_group fs ("h:" ^ h)
        (("installed_hash", [ Asp.Factstore.S p; Asp.Factstore.S h ])
        :: List.map
             (fun args -> (pred, List.map (fun a -> Asp.Factstore.S a) args))
             tuples))
    hashes;
  (* Stray child hashes (see {!stray_hashes}) are a cross-entry property
     — removing one entry can make another entry's child stray — so they
     live in their own group, keyed by content: any change to the stray
     set swaps the whole group through the delta machinery. *)
  (match stray_hashes pool with
  | [] -> ()
  | strays ->
    let key =
      "~stray:"
      ^ Chash.hash_string
          (String.concat "\x00" (List.map (fun (c, ch) -> c ^ "\x01" ^ ch) strays))
    in
    Asp.Factstore.add_group fs key
      (List.map
         (fun (c, ch) ->
           ("stray_hash", [ Asp.Factstore.S c; Asp.Factstore.S ch ]))
         strays));
  (* Versions only the pool knows, one group per (package, version):
     several entries may share a root version, but the selectable
     version domain is keyed by the pair, not the entry. *)
  let declared p =
    match Pkg.Repo.find lb.lb_repo p with
    | Some pkg -> pkg.Pkg.Package.versions
    | None -> []
  in
  let pool_only = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ spec ->
      let n = Spec.Concrete.root_node spec in
      let p = n.Spec.Concrete.name in
      let v = n.Spec.Concrete.version in
      if not (List.exists (Vers.Version.equal v) (declared p)) then
        Hashtbl.replace pool_only (p, vstr v) v)
    pool.by_hash;
  let pairs =
    Hashtbl.fold (fun (p, vs) v acc -> (p, vs, v) :: acc) pool_only []
    |> List.sort (fun (p1, v1, _) (p2, v2, _) ->
           match String.compare p1 p2 with 0 -> String.compare v1 v2 | c -> c)
  in
  List.iter
    (fun (p, vs, v) ->
      let hook_facts =
        List.filter_map
          (fun hk ->
            if String.equal hk.hk_pkg p && Vers.Range.satisfies v hk.hk_range then
              Some (hk.hk_pred, [ Asp.Factstore.S hk.hk_id; Asp.Factstore.S vs ])
            else None)
          lb.lb_hooks
      in
      Asp.Factstore.add_group fs ("v:" ^ p ^ "@" ^ vs)
        (("version_decl", [ Asp.Factstore.S p; Asp.Factstore.S vs ])
        :: ("version_weight",
            [ Asp.Factstore.S p; Asp.Factstore.S vs; Asp.Factstore.I 20 ])
        :: hook_facts))
    pairs;
  (* words is an Obj.reachable_words walk — skip it unless the gauge is
     actually being collected *)
  if Obs.enabled obs then begin
    Obs.gauge obs "factstore.words" (Asp.Factstore.words fs);
    Obs.gauge obs "factstore.facts" (Asp.Factstore.fact_count fs)
  end;
  fs

let layered_env lb pool =
  let universe = version_universe ~repo:lb.lb_repo ~pool in
  { se_roots = lb.lb_roots;
    se_names = lb.lb_names;
    se_versions =
      List.map
        (fun (p : Pkg.Package.t) ->
          (p.Pkg.Package.name, versions_of universe p.Pkg.Package.name))
        lb.lb_packages;
    se_variants = lb.lb_variants }
