type options = {
  encoding : Encode.encoding;
  splicing : bool;
  reuse : Spec.Concrete.t list;
  mirrors : Binary.Mirror.group option;
  host_os : string;
  host_target : string;
  certify : bool;
}

let default_options =
  { encoding = Encode.Hash_attr;
    splicing = false;
    reuse = [];
    mirrors = None;
    host_os = "linux";
    host_target = "x86_64";
    certify = false }

(* The reusable pool a degraded solve actually sees: the explicit specs
   plus whatever the reachable mirrors index right now (deduplicated by
   DAG hash, explicit specs winning). An unreachable mirror simply
   contributes nothing — the solve proceeds over partial metadata. *)
let effective_reuse options =
  match options.mirrors with
  | None -> options.reuse
  | Some g ->
    let seen = Hashtbl.create 64 in
    List.iter
      (fun s -> Hashtbl.replace seen (Spec.Concrete.dag_hash s) ())
      options.reuse;
    options.reuse
    @ List.filter
        (fun s -> not (Hashtbl.mem seen (Spec.Concrete.dag_hash s)))
        (Binary.Mirror.reachable_specs g)

type stats = {
  ground_atoms : int;
  ground_rules : int;
  fact_count : int;
  sat_stats : (string * int) list;
  stable_checks : int;
  costs : (int * int) list;
  encode_seconds : float;
  ground_seconds : float;
  solve_seconds : float;
  total_seconds : float;
}

type outcome = {
  solution : Decode.solution;
  stats : stats;
}

let now () = Unix.gettimeofday ()

(* Requests must name known packages (or virtuals): an unknown name
   would otherwise surface as a baffling UNSAT. *)
let check_known ~repo requests =
  let known n = Pkg.Repo.mem repo n || Pkg.Repo.is_virtual repo n in
  List.find_map
    (fun (r : Encode.request) ->
      let root = r.Encode.req.Spec.Abstract.root.Spec.Abstract.name in
      if Pkg.Repo.is_virtual repo root then
        Some
          (Printf.sprintf
             "virtual packages cannot be requested as roots: %s (request a provider: %s)"
             root
             (String.concat ", "
                (List.map
                   (fun (p : Pkg.Package.t) -> p.Pkg.Package.name)
                   (Pkg.Repo.providers repo root))))
      else
        let names =
          root
          :: List.map
               (fun (d : Spec.Abstract.dep) -> d.Spec.Abstract.node.Spec.Abstract.name)
               r.Encode.req.Spec.Abstract.deps
        in
        List.find_map
          (fun n ->
            if known n then None else Some (Printf.sprintf "unknown package: %s" n))
          names)
    requests

(* A failed concretization, with the refutation certificate when the
   failure was an UNSAT answer computed under [certify = true]. *)
type failure = {
  f_message : string;
  f_proof : Asp.Sat.proof_step list option;
}

let fail msg = Error { f_message = msg; f_proof = None }

let concretize_v ~repo ?(options = default_options) requests =
  match check_known ~repo requests with
  | Some e -> fail e
  | None ->
  let t0 = now () in
  let encoded =
    Encode.encode ~repo ~encoding:options.encoding ~splicing:options.splicing
      ~reuse:(effective_reuse options) ~host_os:options.host_os
      ~host_target:options.host_target requests
  in
  let program_text =
    Program.assemble ~encoding:options.encoding ~splicing:options.splicing
  in
  let statements =
    Asp.parse program_text @ encoded.Encode.rules @ encoded.Encode.facts
  in
  let t1 = now () in
  let ground = Asp.Ground.ground statements in
  let t2 = now () in
  let result = Asp.Logic.solve ~certify:options.certify ground in
  let t3 = now () in
  match result with
  | Asp.Logic.Unsat proof ->
    Error { f_message = "UNSAT: no valid concretization exists"; f_proof = proof }
  | Asp.Logic.Sat model -> (
    match Decode.decode ~pool:encoded.Encode.pool ~requests model with
    | Error e -> fail ("decode: " ^ e)
    | Ok solution ->
      Ok
        { solution;
          stats =
            { ground_atoms = Asp.Ground.atom_count ground;
              ground_rules = List.length (Asp.Ground.rules ground);
              fact_count = List.length encoded.Encode.facts;
              sat_stats = model.Asp.Logic.sat_stats;
              stable_checks = model.Asp.Logic.stable_checks;
              costs = model.Asp.Logic.costs;
              encode_seconds = t1 -. t0;
              ground_seconds = t2 -. t1;
              solve_seconds = t3 -. t2;
              total_seconds = t3 -. t0 } })

let concretize ~repo ?options requests =
  match concretize_v ~repo ?options requests with
  | Ok o -> Ok o
  | Error f -> Error f.f_message

let concretize_spec ~repo ?options text =
  match Encode.request_of_string text with
  | req -> concretize ~repo ?options [ req ]
  | exception Spec.Parser.Parse_error e -> Error ("parse error: " ^ e)

let pp_stats fmt s =
  Format.fprintf fmt
    "atoms=%d rules=%d facts=%d stable_checks=%d encode=%.3fs ground=%.3fs solve=%.3fs total=%.3fs"
    s.ground_atoms s.ground_rules s.fact_count s.stable_checks s.encode_seconds
    s.ground_seconds s.solve_seconds s.total_seconds
