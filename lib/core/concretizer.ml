type options = {
  encoding : Encode.encoding;
  splicing : bool;
  reuse : Spec.Concrete.t list;
  mirrors : Binary.Mirror.group option;
  host_os : string;
  host_target : string;
  certify : bool;
  prune : bool;
  verify : bool;
  baseline_solver : bool;
  ground_jobs : int;
  portfolio : int;
  obs : Obs.ctx;
}

let default_options =
  { encoding = Encode.Hash_attr;
    splicing = false;
    reuse = [];
    mirrors = None;
    host_os = "linux";
    host_target = "x86_64";
    certify = false;
    prune = true;
    verify = false;
    baseline_solver = false;
    ground_jobs = 1;
    portfolio = 1;
    obs = Obs.disabled }

(* The reusable pool a degraded solve actually sees: the explicit specs
   plus whatever the reachable mirrors index right now (deduplicated by
   DAG hash, explicit specs winning). An unreachable mirror simply
   contributes nothing — the solve proceeds over partial metadata. *)
let effective_reuse options =
  match options.mirrors with
  | None -> options.reuse
  | Some g ->
    let seen = Hashtbl.create 64 in
    List.iter
      (fun s -> Hashtbl.replace seen (Spec.Concrete.dag_hash s) ())
      options.reuse;
    options.reuse
    @ List.filter
        (fun s -> not (Hashtbl.mem seen (Spec.Concrete.dag_hash s)))
        (Binary.Mirror.reachable_specs g)

type stats = {
  ground_atoms : int;
  ground_rules : int;
  fact_count : int;
  pool_total : int;
  pool_used : int;
  sat_stats : (string * int) list;
  stable_checks : int;
  costs : (int * int) list;
  verify_violations : int option;  (* None = verification not run *)
  encode_seconds : float;
  ground_seconds : float;
  solve_seconds : float;
  total_seconds : float;
}

type outcome = {
  solution : Decode.solution;
  stats : stats;
}

let now () = Obs.Clock.now_s ()

(* Requests must name known packages (or virtuals): an unknown name
   would otherwise surface as a baffling UNSAT. *)
let check_known ~repo requests =
  let known n = Pkg.Repo.mem repo n || Pkg.Repo.is_virtual repo n in
  List.find_map
    (fun (r : Encode.request) ->
      let root = r.Encode.req.Spec.Abstract.root.Spec.Abstract.name in
      if Pkg.Repo.is_virtual repo root then
        Some
          (Printf.sprintf
             "virtual packages cannot be requested as roots: %s (request a provider: %s)"
             root
             (String.concat ", "
                (List.map
                   (fun (p : Pkg.Package.t) -> p.Pkg.Package.name)
                   (Pkg.Repo.providers repo root))))
      else
        let names =
          root
          :: List.map
               (fun (d : Spec.Abstract.dep) -> d.Spec.Abstract.node.Spec.Abstract.name)
               r.Encode.req.Spec.Abstract.deps
        in
        List.find_map
          (fun n ->
            if known n then None else Some (Printf.sprintf "unknown package: %s" n))
          names)
    requests

(* A failed concretization, with the refutation certificate when the
   failure was an UNSAT answer computed under [certify = true]. *)
type failure = {
  f_message : string;
  f_proof : Asp.Sat.proof_step list option;
  f_timeout : bool;
}

let fail msg = Error { f_message = msg; f_proof = None; f_timeout = false }

let fail_timeout () =
  Error
    { f_message = "timeout: solve budget exhausted";
      f_proof = None;
      f_timeout = true }

(* Independent re-validation of the solution ([options.verify]): each
   returned spec is checked against the repo and its request without
   the solver. Returns the total violation count. *)
let run_verify ~repo ~options ~requests (solution : Decode.solution) =
  let obs = options.obs in
  Obs.with_span obs ~cat:"concretize" "verify" @@ fun span ->
  let pairs =
    try List.combine requests solution.Decode.specs
    with Invalid_argument _ ->
      List.map (fun s -> (List.hd requests, s)) solution.Decode.specs
  in
  let total =
    List.fold_left
      (fun acc ((r : Encode.request), spec) ->
        let violations =
          Verify.check_solution ~repo ~request:r.Encode.req
            ~host_os:options.host_os ~host_target:options.host_target spec
        in
        acc + List.length violations)
      0 pairs
  in
  Obs.set_attr span "specs" (Obs.I (List.length solution.Decode.specs));
  Obs.set_attr span "violations" (Obs.I total);
  Obs.incr obs ~by:total "concretize.verify_violations";
  total

(* Publish a finished request's flat stats into the Obs metric
   registry, so traces carry the same numbers as [pp_stats]. *)
let publish_stats obs (s : stats) =
  if Obs.enabled obs then begin
    Obs.publish obs ~prefix:"sat" s.sat_stats;
    Obs.gauge obs "concretize.ground_atoms" s.ground_atoms;
    Obs.gauge obs "concretize.ground_rules" s.ground_rules;
    Obs.gauge obs "concretize.fact_count" s.fact_count;
    Obs.gauge obs "concretize.pool_total" s.pool_total;
    Obs.gauge obs "concretize.pool_used" s.pool_used;
    Obs.observe obs "concretize.solve_seconds" s.solve_seconds
  end

let concretize_v ~repo ?(options = default_options) ?budget ?closure
    ?(attrs = []) requests =
  match check_known ~repo requests with
  | Some e -> fail e
  | None ->
  let obs = options.obs in
  Obs.with_span obs ~cat:"concretize" "concretize"
    ~attrs:
      (( "roots",
         Obs.S
           (String.concat ","
              (List.map
                 (fun (r : Encode.request) ->
                   r.Encode.req.Spec.Abstract.root.Spec.Abstract.name)
                 requests)) )
      :: attrs)
  @@ fun _span ->
  let t0 = now () in
  let encoded =
    Obs.with_span obs ~cat:"concretize" "encode" (fun _ ->
        Encode.encode ~repo ~encoding:options.encoding ~splicing:options.splicing
          ~reuse:(effective_reuse options) ~prune:options.prune ?closure ~obs
          ~host_os:options.host_os ~host_target:options.host_target requests)
  in
  let statements =
    Obs.with_span obs ~cat:"concretize" "assemble" (fun _ ->
        let program_text =
          Program.assemble ~encoding:options.encoding ~splicing:options.splicing ()
        in
        Asp.parse program_text @ encoded.Encode.rules @ encoded.Encode.facts)
  in
  let t1 = now () in
  let ground =
    Obs.with_span obs ~cat:"concretize" "ground" (fun _ ->
        Asp.Ground.ground ~obs ~jobs:options.ground_jobs statements)
  in
  let t2 = now () in
  let result =
    match
      Obs.with_span obs ~cat:"concretize" "solve" (fun _ ->
          (* The two Logic instances share model/outcome types, so the
             baseline dispatch is invisible downstream. *)
          if options.baseline_solver then
            Asp.Logic.Baseline.solve ~certify:options.certify ~obs ?budget ground
          else
            Asp.Logic.solve ~certify:options.certify ~obs ?budget
              ~portfolio:options.portfolio ground)
    with
    | r -> Some r
    | exception Asp.Solver_intf.Timeout -> None
  in
  let t3 = now () in
  match result with
  | None -> fail_timeout ()
  | Some (Asp.Logic.Unsat proof) ->
    Error
      { f_message = "UNSAT: no valid concretization exists";
        f_proof = proof;
        f_timeout = false }
  | Some (Asp.Logic.Sat model) -> (
    let decoded =
      Obs.with_span obs ~cat:"concretize" "decode" (fun _ ->
          Decode.decode ~pool:encoded.Encode.pool ~requests model)
    in
    match decoded with
    | Error e -> fail ("decode: " ^ e)
    | Ok solution ->
      let verify_violations =
        if options.verify then Some (run_verify ~repo ~options ~requests solution)
        else None
      in
      let stats =
        { ground_atoms = Asp.Ground.atom_count ground;
          ground_rules = List.length (Asp.Ground.rules ground);
          fact_count = List.length encoded.Encode.facts;
          pool_total = encoded.Encode.pool_total;
          pool_used = Encode.pool_size encoded.Encode.pool;
          sat_stats = model.Asp.Logic.sat_stats;
          stable_checks = model.Asp.Logic.stable_checks;
          costs = model.Asp.Logic.costs;
          verify_violations;
          encode_seconds = t1 -. t0;
          ground_seconds = t2 -. t1;
          solve_seconds = t3 -. t2;
          total_seconds = now () -. t0 }
      in
      publish_stats obs stats;
      Ok { solution; stats })

let concretize ~repo ?options requests =
  match concretize_v ~repo ?options requests with
  | Ok o -> Ok o
  | Error f -> Error f.f_message

let concretize_spec ~repo ?options text =
  match Encode.request_of_string text with
  | req -> concretize ~repo ?options [ req ]
  | exception Spec.Parser.Parse_error e -> Error ("parse error: " ^ e)

let pp_stats fmt s =
  let sat k = match List.assoc_opt k s.sat_stats with Some v -> v | None -> 0 in
  Format.fprintf fmt
    "atoms=%d rules=%d facts=%d pool=%d/%d clauses=%d conflicts=%d props=%d \
     restarts=%d learnts=%d stable_checks=%d encode=%.3fs ground=%.3fs \
     solve=%.3fs total=%.3fs"
    s.ground_atoms s.ground_rules s.fact_count s.pool_used s.pool_total
    (sat "clauses") (sat "conflicts") (sat "propagations") (sat "restarts")
    (sat "learnts") s.stable_checks s.encode_seconds s.ground_seconds
    s.solve_seconds s.total_seconds;
  (* Glucose-core DB-management counters; zero (and omitted) on solves
     too small to trigger a reduction or minimization. *)
  if sat "reduces" > 0 then
    Format.fprintf fmt " reduces=%d removed=%d" (sat "reduces") (sat "removed");
  if sat "minimized" > 0 then Format.fprintf fmt " min_lits=%d" (sat "minimized");
  (* Inprocessing counters; zero (and omitted) when no pass fired. *)
  if sat "vivified" > 0 then Format.fprintf fmt " vivified=%d" (sat "vivified");
  if sat "subsumed" > 0 then Format.fprintf fmt " subsumed=%d" (sat "subsumed");
  if sat "probed_failed" > 0 then
    Format.fprintf fmt " probed_failed=%d" (sat "probed_failed");
  if sat "rephases" > 0 then Format.fprintf fmt " rephases=%d" (sat "rephases");
  (* Portfolio clause traffic, nonzero only on raced solves. *)
  if sat "exchanged_in" > 0 || sat "exchanged_out" > 0 then
    Format.fprintf fmt " exchanged=%d/%d" (sat "exchanged_in")
      (sat "exchanged_out");
  match s.verify_violations with
  | None -> ()
  | Some 0 -> Format.fprintf fmt " verify=ok"
  | Some n -> Format.fprintf fmt " verify=%d-violation(s)" n

(* ----- incremental sessions ---------------------------------------- *)

module Session = struct
  type conc_options = options

  type t = {
    repo : Pkg.Repo.t;
    options : conc_options;
    env : Encode.session_env;
    pool : Encode.reuse_pool;
    session : Asp.Logic.session;
    ground_atoms : int;
    ground_rules : int;
    fact_count : int;
    pool_total : int;
    pool_used : int;
    setup_seconds : float;
  }

  let check_roots ~repo roots =
    List.find_map
      (fun n ->
        if Pkg.Repo.is_virtual repo n then
          Some (Printf.sprintf "virtual packages cannot be session roots: %s" n)
        else if not (Pkg.Repo.mem repo n) then
          Some (Printf.sprintf "unknown package: %s" n)
        else None)
      roots

  let create ~repo ?(options = default_options) ?closure ~roots () =
    match check_roots ~repo roots with
    | Some e -> Error e
    | None ->
      let obs = options.obs in
      Obs.with_span obs ~cat:"concretize" "session.create"
        ~attrs:[ ("roots", Obs.I (List.length roots)) ]
      @@ fun _span ->
      let t0 = now () in
      let encoded, env =
        Obs.with_span obs ~cat:"concretize" "encode" (fun _ ->
            Encode.encode_session ~repo ~encoding:options.encoding
              ~splicing:options.splicing ~reuse:(effective_reuse options)
              ~prune:options.prune ?closure ~obs ~host_os:options.host_os
              ~host_target:options.host_target ~roots ())
      in
      let statements =
        Obs.with_span obs ~cat:"concretize" "assemble" (fun _ ->
            let program_text =
              Program.assemble ~session:true ~encoding:options.encoding
                ~splicing:options.splicing ()
            in
            Asp.parse program_text @ encoded.Encode.rules @ encoded.Encode.facts)
      in
      let ground =
        Obs.with_span obs ~cat:"concretize" "ground" (fun _ ->
            Asp.Ground.ground ~obs ~jobs:options.ground_jobs statements)
      in
      let session =
        Asp.Logic.session_create ~certify:options.certify ~obs
          ~portfolio:options.portfolio ground
      in
      Ok
        { repo;
          options;
          env;
          pool = encoded.Encode.pool;
          session;
          ground_atoms = Asp.Ground.atom_count ground;
          ground_rules = List.length (Asp.Ground.rules ground);
          fact_count = List.length encoded.Encode.facts;
          pool_total = encoded.Encode.pool_total;
          pool_used = Encode.pool_size encoded.Encode.pool;
          setup_seconds = now () -. t0 }

  let setup_seconds s = s.setup_seconds

  let sat_stats s = Asp.Logic.session_sat_stats s.session

  let solves s = Asp.Logic.session_solves s.session

  let set_portfolio s n = Asp.Logic.session_set_portfolio s.session n

  let solve ?budget ?obs ?(attrs = []) s (request : Encode.request) =
    match check_known ~repo:s.repo [ request ] with
    | Some e -> fail e
    | None -> (
      match Encode.assumptions_for s.env request with
      | Error e -> fail e
      | Ok assume -> (
        (* [?obs] overrides the session's context for this request's
           spans and stats — the serve layer tees in a per-request
           flight-recorder context here. The solver-internal spans
           still go to the context captured at session creation. *)
        let obs = match obs with Some o -> o | None -> s.options.obs in
        Obs.with_span obs ~cat:"concretize" "session.request"
          ~attrs:
            (( "root",
               Obs.S request.Encode.req.Spec.Abstract.root.Spec.Abstract.name )
            :: attrs)
        @@ fun _span ->
        (* The budget is installed per call (and cleared when absent):
           a preempted request unwinds the solver to level 0 and all
           descent constraints are activation-gated, so the session
           stays valid for the next request. *)
        Asp.Logic.session_set_budget s.session budget;
        let t0 = now () in
        match Asp.Logic.session_solve s.session ~assume with
        | exception Asp.Solver_intf.Timeout -> fail_timeout ()
        | Asp.Logic.Unsat proof ->
          Error
            { f_message = "UNSAT: no valid concretization exists";
              f_proof = proof;
              f_timeout = false }
        | Asp.Logic.Sat model -> (
          let t1 = now () in
          let decoded =
            Obs.with_span obs ~cat:"concretize" "decode" (fun _ ->
                Decode.decode ~pool:s.pool ~requests:[ request ] model)
          in
          match decoded with
          | Error e -> fail ("decode: " ^ e)
          | Ok solution ->
            let verify_violations =
              if s.options.verify then
                Some
                  (run_verify ~repo:s.repo ~options:s.options
                     ~requests:[ request ] solution)
              else None
            in
            let stats =
              { ground_atoms = s.ground_atoms;
                ground_rules = s.ground_rules;
                fact_count = s.fact_count;
                pool_total = s.pool_total;
                pool_used = s.pool_used;
                sat_stats = model.Asp.Logic.sat_stats;
                stable_checks = model.Asp.Logic.stable_checks;
                costs = model.Asp.Logic.costs;
                verify_violations;
                encode_seconds = 0.;
                ground_seconds = 0.;
                solve_seconds = t1 -. t0;
                total_seconds = now () -. t0 }
            in
            publish_stats obs stats;
            Ok { solution; stats })))
end

(* ----- warm delta-grounded universes ------------------------------- *)

module Warm = struct
  type conc_options = options

  type t = {
    repo : Pkg.Repo.t;
    options : conc_options;
    base : Encode.layered_base;
    program_digest : string;  (* program text + rendered base layer *)
    cache_dir : string option;
    mutable layered : Asp.Ground.layered;
    mutable pool : Encode.reuse_pool;
    mutable env : Encode.session_env;
    mutable digest : string;  (* current pool digest *)
    mutable pool_facts : int;  (* facts in the current pool layer *)
    mutable loaded_from_cache : bool;
    mutable setup_seconds : float;
  }

  (* The buildcache identity: a content hash over the sorted DAG
     hashes of the reusable specs (same scheme the solve server keys
     its eviction generation on). *)
  let pool_digest specs =
    List.map Spec.Concrete.dag_hash specs
    |> List.sort String.compare
    |> String.concat "\n"
    |> Chash.hash_string

  (* Diff the target pool's group keys against the applied entries and
     feed the delta to the layered grounder. Entries are named fact
     groups, so a buildcache swap costs one update proportional to the
     churn, not the pool. *)
  let apply_pool t specs =
    let obs = t.options.obs in
    let pool = Encode.pool_of_specs specs in
    let fs = Encode.pool_groups ~obs t.base pool in
    let removed =
      List.filter
        (fun k -> not (Asp.Factstore.mem fs k))
        (Asp.Ground.layered_entry_keys t.layered)
    in
    let added =
      List.filter_map
        (fun k ->
          if Asp.Ground.layered_has_entry t.layered k then None
          else Some (k, Asp.Factstore.group_atoms fs k))
        (Asp.Factstore.keys fs)
    in
    Asp.Ground.layered_update ~obs t.layered ~removed ~added;
    t.pool <- pool;
    t.pool_facts <- Asp.Factstore.fact_count fs;
    t.env <- Encode.layered_env t.base pool;
    (* layered_words is a whole-heap reachability walk — only pay for
       it when someone is actually collecting the gauge *)
    if Obs.enabled obs then
      Obs.gauge obs "warm.ground_words" (Asp.Ground.layered_words t.layered)

  let save_cache t key =
    match t.cache_dir with
    | None -> ()
    | Some dir ->
      ignore (Groundcache.save ~obs:t.options.obs ~dir key t.layered)

  let cache_key t pool_dig =
    Groundcache.key ~program:t.program_digest ~pool:pool_dig

  let create ~repo ?(options = default_options) ?ground_cache ~roots () =
    match Session.check_roots ~repo roots with
    | Some e -> Error e
    | None ->
      let obs = options.obs in
      Obs.with_span obs ~cat:"concretize" "warm.create"
        ~attrs:[ ("roots", Obs.I (List.length roots)) ]
      @@ fun _span ->
      let t0 = now () in
      let base =
        Obs.with_span obs ~cat:"concretize" "encode" (fun _ ->
            Encode.encode_layered_base ~repo ~encoding:options.encoding
              ~splicing:options.splicing ~obs ~host_os:options.host_os
              ~host_target:options.host_target ~roots ())
      in
      let text =
        Program.assemble ~session:true ~encoding:options.encoding
          ~splicing:options.splicing ()
      in
      (* The cache key's program side: logic program text plus the
         rendered base layer, which covers the repo's entire encoding
         (package facts, hooks' emitted declared-range facts, splice
         rules) — a repo change lands on a new key without hashing the
         repo itself. *)
      let program_digest =
        Chash.hash_string
          (text ^ "\x00"
          ^ Chash.hash_string
              (Asp.facts_to_string
                 (base.Encode.lb_rules @ base.Encode.lb_facts)))
      in
      let reuse = effective_reuse options in
      let pdig = pool_digest reuse in
      let empty_dig = pool_digest [] in
      let load key =
        match ground_cache with
        | None -> None
        | Some dir -> Groundcache.load ~obs ~dir key
      in
      let mk layered pool_specs digest from_cache =
        let pool = Encode.pool_of_specs pool_specs in
        { repo;
          options;
          base;
          program_digest;
          cache_dir = ground_cache;
          layered;
          pool;
          env = Encode.layered_env base pool;
          digest;
          pool_facts = 0;
          loaded_from_cache = from_cache;
          setup_seconds = 0. }
      in
      let full_key = Groundcache.key ~program:program_digest ~pool:pdig in
      let t =
        match load full_key with
        | Some layered ->
          let t = mk layered reuse pdig true in
          (* the snapshot already carries its applied pool groups — no
             need to re-encode the pool just to report the layer size *)
          t.pool_facts <- Asp.Ground.layered_pool_facts layered;
          t
        | None ->
          let base_key =
            Groundcache.key ~program:program_digest ~pool:empty_dig
          in
          let layered, base_cached =
            match load base_key with
            | Some l -> (l, true)
            | None ->
              let statements =
                Obs.with_span obs ~cat:"concretize" "assemble" (fun _ ->
                    Asp.parse text @ base.Encode.lb_rules
                    @ base.Encode.lb_facts)
              in
              let l =
                Obs.with_span obs ~cat:"concretize" "ground" (fun _ ->
                    Asp.Ground.layered_create ~obs statements)
              in
              (l, false)
          in
          let t = mk layered [] empty_dig base_cached in
          if not base_cached then save_cache t base_key;
          if reuse <> [] then begin
            apply_pool t reuse;
            t.digest <- pdig;
            save_cache t full_key
          end;
          t
      in
      t.setup_seconds <- now () -. t0;
      Ok t

  (* Swap the buildcache; [true] when the digest (and hence the
     grounding) changed. The delta path replaces eviction: warm ground
     state survives, only the churned entries reground. *)
  let set_pool t specs =
    let d = pool_digest specs in
    if String.equal d t.digest then false
    else begin
      Obs.with_span t.options.obs ~cat:"concretize" "warm.set_pool"
        ~attrs:[ ("specs", Obs.I (List.length specs)) ]
      @@ fun _span ->
      apply_pool t specs;
      t.digest <- d;
      save_cache t (cache_key t d);
      true
    end

  (* A fresh solve session over the current grounding: snapshot the
     layered ground program (shares the warm atom store) and translate
     it for the incremental solver. Cheap relative to regrounding —
     this is what a worker rebuilds after an eviction or a recycle. *)
  let session t =
    let obs = t.options.obs in
    Obs.with_span obs ~cat:"concretize" "warm.session" @@ fun _span ->
    let t0 = now () in
    let g = Asp.Ground.layered_snapshot ~obs t.layered in
    let session =
      Asp.Logic.session_create ~certify:t.options.certify ~obs
        ~portfolio:t.options.portfolio g
    in
    { Session.repo = t.repo;
      options = t.options;
      env = t.env;
      pool = t.pool;
      session;
      ground_atoms = Asp.Ground.atom_count g;
      ground_rules = List.length (Asp.Ground.rules g);
      fact_count = List.length t.base.Encode.lb_facts + t.pool_facts;
      pool_total = Encode.pool_size t.pool;
      pool_used = Encode.pool_size t.pool;
      setup_seconds = now () -. t0 }

  let generation t = Asp.Ground.layered_generation t.layered
  let entry_count t = List.length (Asp.Ground.layered_entry_keys t.layered)
  let digest t = t.digest
  let words t = Asp.Ground.layered_words t.layered
  let from_cache t = t.loaded_from_cache
  let setup_seconds t = t.setup_seconds
end

(* ----- multicore batch concretization ------------------------------ *)

let concretize_batch ~repo ?(options = default_options) ?(jobs = 1)
    ?(session = false) requests =
  (* Resolve the mirror layer once, before any domain spawns: mirror
     probing mutates breaker state and must not race (and every domain
     must see the same pool for determinism). *)
  let options = { options with reuse = effective_reuse options; mirrors = None } in
  let obs = options.obs in
  Obs.with_span obs ~cat:"concretize" "batch"
    ~attrs:[ ("requests", Obs.I (List.length requests)); ("jobs", Obs.I jobs) ]
  @@ fun _span ->
  let arr = Array.of_list requests in
  let n = Array.length arr in
  let results : (outcome, failure) result option array = Array.make n None in
  let jobs = if n = 0 then 1 else max 1 (min jobs n) in
  (* Static round-robin partition: request [i] is solved by domain
     [i mod jobs] and written to slot [i], so the result list does not
     depend on the number of domains. In the default per-request-fresh
     mode the solves are fully independent, making batch output
     byte-identical for any [jobs]; in [session] mode each domain
     builds one session over all batch roots and results are
     cost-deterministic (learned-clause carryover may break ties
     differently between partitions). The shared [obs] context is
     domain-safe; each domain's spans carry its own [tid], which is
     what renders the batch as per-domain timelines. *)
  let worker j =
    let each f =
      let i = ref j in
      while !i < n do
        results.(!i) <- Some (f !i);
        i := !i + jobs
      done
    in
    if session then begin
      let roots =
        List.map
          (fun (r : Encode.request) ->
            r.Encode.req.Spec.Abstract.root.Spec.Abstract.name)
          requests
        |> List.filter (fun r -> Pkg.Repo.mem repo r && not (Pkg.Repo.is_virtual repo r))
        |> List.sort_uniq String.compare
      in
      match Session.create ~repo ~options ~roots () with
      | Error e -> each (fun _ -> fail e)
      | Ok s -> each (fun i -> Session.solve s arr.(i))
    end
    else each (fun i -> concretize_v ~repo ~options [ arr.(i) ])
  in
  if jobs <= 1 then worker 0
  else begin
    let domains =
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    List.iter Domain.join domains
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)
