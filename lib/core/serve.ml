(* spackml serve: a resident multi-tenant concretization server.

   The one-shot CLI pays encode + ground + solver warm-up on every
   request; the server keeps that state alive and serves requests over
   a Unix socket instead:

   - a pool of OCaml 5 domain workers, each owning a warm
     [Concretizer.Session] (ground program translated once, solved
     under per-request assumptions);
   - a work-distributing request queue with stealing: submission is
     round-robin over per-worker queues, an idle worker drains its own
     queue first and then steals from its neighbours; admission is
     bounded ([max_queue] enqueued jobs) with a typed [overloaded]
     rejection instead of unbounded latency;
   - per-request deadlines and conflict caps enforced inside the SAT
     core by the [Asp.Solver_intf.budget] hook — a preempted request
     answers [timeout] and leaves the worker's session reusable;
   - dependency closures cached by (roots, pool digest) and evicted
     whenever the buildcache digest changes ([set_reuse] bumps a
     generation; stale sessions rebuild lazily);
   - length-prefixed JSON frames ([Sjson.Frame]) as the wire protocol,
     with [Client] as the in-process driver.

   Threading model: solver work runs on domains (true parallelism);
   socket I/O runs on lightweight systhreads (one acceptor, one reader
   per connection) that spend their life blocked in [Unix.read].
   Workers write responses directly to the originating connection
   under its write mutex, so responses to pipelined requests may
   arrive out of order — they carry the request [id] for matching. *)

type mode = Session | Fresh

(* Live-telemetry knobs: rolling SLO windows plus the flight recorder.
   The horizon is split into [slots] rotating sub-windows, so the
   wire "stats" op can answer "p99 over the last N seconds" without
   ever scanning history; the recorder tail-samples completed request
   traces (always keep errors/deadline misses/slowest K). *)
type telemetry = {
  horizon_s : float;  (* rolling-stats horizon *)
  slots : int;  (* sub-windows per horizon *)
  recorder_capacity : int;  (* flight-recorder ring size; 0 disables *)
  recorder_sample : int;  (* keep 1-in-N unremarkable request traces *)
  recorder_slowest : int;  (* slowest K per horizon always kept *)
}

let default_telemetry =
  { horizon_s = 60.;
    slots = 12;
    recorder_capacity = 256;
    recorder_sample = 16;
    recorder_slowest = 8 }

type config = {
  workers : int;  (* solver domains *)
  max_queue : int;  (* admission bound: max enqueued-not-yet-running jobs *)
  default_deadline_ms : float option;
  default_conflicts : int option;
  default_mode : mode;
  portfolio : int;
      (* upper bound on per-request portfolio width: a solve may race
         up to this many diversified SAT clones, but only by borrowing
         provably idle worker slots (a bounded token pool), so racing
         never steals CPU from queued requests. 1 = feature off. *)
  session_roots : string list;
      (* universe of the warm sessions; [] = every non-virtual package *)
  session_recycle : int option;
      (* rebuild a worker's session after this many solves: repeated
         optimization descents leave deactivated constraints behind,
         so a long-lived session slows down; recycling bounds that
         growth at the cost of an amortized rebuild *)
  fault_injection : bool;  (* honor the "boom" request flag *)
  reuse_source : (unit -> Spec.Concrete.t list) option;
      (* backing of the wire "reload" op *)
  ground_cache : string option;
      (* persistent on-disk ground cache directory: workers load their
         warm grounding from it on cold start and persist new pool
         generations into it (keys carry the pool digest, so a reload
         can never serve a stale grounding) *)
  telemetry : telemetry option;
      (* live windowed stats + flight recorder; [None] turns the whole
         layer off (the disabled path is a single branch per request) *)
  options : Concretizer.options;
}

let default_config =
  { workers = 4;
    max_queue = 256;
    default_deadline_ms = None;
    default_conflicts = None;
    default_mode = Session;
    portfolio = 1;
    session_roots = [];
    session_recycle = Some 32;
    fault_injection = false;
    reuse_source = None;
    ground_cache = None;
    telemetry = Some default_telemetry;
    options = Concretizer.default_options }

(* The buildcache identity: a content hash over the sorted DAG hashes
   of the reusable specs. Cached closures and warm sessions are valid
   exactly as long as this digest is. *)
let pool_digest specs =
  List.map Spec.Concrete.dag_hash specs
  |> List.sort String.compare
  |> String.concat "\n"
  |> Chash.hash_string

(* ---- connections --------------------------------------------------- *)

(* A connection outlives its reader thread while jobs for it are still
   in flight (workers write responses directly); the fd closes when
   the reader is done AND the last pending job has answered. *)
type conn = {
  c_fd : Unix.file_descr;
  c_wmu : Mutex.t;  (* serializes response frames *)
  c_mu : Mutex.t;  (* guards the three fields below *)
  mutable c_jobs : int;  (* jobs in flight for this connection *)
  mutable c_eof : bool;  (* reader finished *)
  mutable c_closed : bool;  (* fd actually closed *)
}

let conn_create fd =
  { c_fd = fd;
    c_wmu = Mutex.create ();
    c_mu = Mutex.create ();
    c_jobs = 0;
    c_eof = false;
    c_closed = false }

let conn_close_if_done c =
  if c.c_eof && c.c_jobs = 0 && not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let conn_job_begin c =
  Mutex.lock c.c_mu;
  c.c_jobs <- c.c_jobs + 1;
  Mutex.unlock c.c_mu

let conn_job_end c =
  Mutex.lock c.c_mu;
  c.c_jobs <- c.c_jobs - 1;
  conn_close_if_done c;
  Mutex.unlock c.c_mu

let conn_reader_done c =
  Mutex.lock c.c_mu;
  c.c_eof <- true;
  conn_close_if_done c;
  Mutex.unlock c.c_mu

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* ---- jobs and server state ----------------------------------------- *)

type job = {
  j_conn : conn;
  j_id : Sjson.t;  (* echoed verbatim in the response *)
  j_rid : string;  (* request id: client-supplied or server-assigned *)
  j_op : string;
  j_payload : Sjson.t;
  j_received : float;  (* monotonic, at frame decode *)
  j_deadline : float option;  (* absolute monotonic deadline *)
  j_obs : Obs.ctx;
      (* per-request recording context (flight recorder); [disabled]
         when the recorder is off or the op is not traced *)
}

(* Rolling-window state behind the live "stats" answer. Every counter
   and histogram here shares the configured horizon/slot layout, so
   one "window" selector in the request applies uniformly. *)
type live = {
  lv_cfg : telemetry;
  lv_solve_ms : Obs.Window.hist;  (* end-to-end latency of solve ops *)
  lv_queue_ms : Obs.Window.hist;
  lv_requests : Obs.Window.counter;  (* every answered request *)
  lv_ok : Obs.Window.counter;
  lv_unsat : Obs.Window.counter;
  lv_timeout : Obs.Window.counter;
  lv_error : Obs.Window.counter;
  lv_overloaded : Obs.Window.counter;
  lv_deadline_miss : Obs.Window.counter;
  lv_closure_hits : Obs.Window.counter;
  lv_closure_misses : Obs.Window.counter;
  lv_gcache_hits : Obs.Window.counter;
  lv_gcache_misses : Obs.Window.counter;
  lv_recycles : Obs.Window.counter;
  lv_recorder : Obs.Recorder.t option;
}

let make_live (tc : telemetry) =
  let h () = Obs.Window.hist ~slots:tc.slots ~horizon_s:tc.horizon_s () in
  let c () = Obs.Window.counter ~slots:tc.slots ~horizon_s:tc.horizon_s () in
  { lv_cfg = tc;
    lv_solve_ms = h ();
    lv_queue_ms = h ();
    lv_requests = c ();
    lv_ok = c ();
    lv_unsat = c ();
    lv_timeout = c ();
    lv_error = c ();
    lv_overloaded = c ();
    lv_deadline_miss = c ();
    lv_closure_hits = c ();
    lv_closure_misses = c ();
    lv_gcache_hits = c ();
    lv_gcache_misses = c ();
    lv_recycles = c ();
    lv_recorder =
      (if tc.recorder_capacity > 0 then
         Some
           (Obs.Recorder.create ~capacity:tc.recorder_capacity
              ~sample_every:tc.recorder_sample ~slowest_k:tc.recorder_slowest
              ~window_s:tc.horizon_s ())
       else None) }

(* Count one answered (or rejected) request into the rolling windows. *)
let live_count lv ~status ~deadline_missed =
  Obs.Window.add lv.lv_requests 1;
  (match status with
  | "ok" -> Obs.Window.add lv.lv_ok 1
  | "unsat" -> Obs.Window.add lv.lv_unsat 1
  | "timeout" -> Obs.Window.add lv.lv_timeout 1
  | "overloaded" -> Obs.Window.add lv.lv_overloaded 1
  | _ -> Obs.Window.add lv.lv_error 1);
  if deadline_missed then Obs.Window.add lv.lv_deadline_miss 1

type t = {
  repo : Pkg.Repo.t;
  config : config;
  sock_path : string;
  listen_fd : Unix.file_descr;
  roots : string list;  (* session universe, sorted *)
  roots_set : (string, unit) Hashtbl.t;  (* read-only after start *)
  (* queueing (guarded by [mu]) *)
  mu : Mutex.t;
  nonempty : Condition.t;
  queues : job Queue.t array;  (* one per worker; stealing crosses them *)
  mutable submit_rr : int;
  mutable pending : int;
  mutable running : bool;
  mutable served : int;
  mutable rejected : int;
  (* buildcache state (guarded by [pool_mu]) *)
  pool_mu : Mutex.t;
  mutable reuse : Spec.Concrete.t list;
  mutable pool : Encode.reuse_pool;
  mutable digest : string;
  mutable generation : int;
  closures : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* roots key -> closure; valid for the current generation only *)
  (* Idle-worker tokens backing portfolio admission: capacity is
     [workers - 1] (every slot but the one doing the solve). A raced
     request CAS-borrows up to [portfolio - 1] tokens for its racer
     domains and returns them when the race ends; when the server is
     busy the pool is empty and solves simply run single. *)
  idle_tokens : int Atomic.t;
  (* live telemetry *)
  started_s : float;
  rid_counter : int Atomic.t;  (* server-assigned request ids *)
  live : live option;
  (* lifecycle *)
  mutable accept_thread : Thread.t option;
  mutable domains : unit Domain.t list;
}

let fresh_rid t = Printf.sprintf "srv-%d" (Atomic.fetch_and_add t.rid_counter 1)

(* The request id joins client and server traces: take the client's
   ("rid" string or int), assign one otherwise. *)
let rid_of t payload =
  match Sjson.member_opt "rid" payload with
  | Some (Sjson.String s) when s <> "" -> s
  | Some (Sjson.Int n) -> string_of_int n
  | _ -> fresh_rid t

let obs t = t.config.options.Concretizer.obs

let generation t =
  Mutex.lock t.pool_mu;
  let g = t.generation in
  Mutex.unlock t.pool_mu;
  g

let pool_digest_of t =
  Mutex.lock t.pool_mu;
  let d = t.digest in
  Mutex.unlock t.pool_mu;
  d

(* Swap the reusable pool. A digest change bumps the generation:
   cached closures are dropped eagerly, warm sessions are invalidated
   lazily (each worker compares generations before reusing its
   session). Same digest = no-op, so callers can re-feed the same
   buildcache freely. *)
let set_reuse t specs =
  Mutex.lock t.pool_mu;
  let d = pool_digest specs in
  let changed = d <> t.digest in
  if changed then begin
    t.reuse <- specs;
    t.pool <- Encode.pool_of_specs specs;
    t.digest <- d;
    t.generation <- t.generation + 1;
    Hashtbl.reset t.closures;
    Obs.incr (obs t) "serve.evictions"
  end;
  Mutex.unlock t.pool_mu;
  changed

(* A consistent snapshot of the buildcache state plus the cached (or
   freshly computed and cached) closure for [roots]. Taken under
   [pool_mu] so a concurrent [set_reuse] can never pair an old closure
   with a new pool. *)
let pool_snapshot t roots =
  let key = String.concat "\x00" roots in
  Mutex.lock t.pool_mu;
  let closure =
    if not t.config.options.Concretizer.prune then None
    else
      match Hashtbl.find_opt t.closures key with
      | Some cl ->
        Obs.incr (obs t) "serve.closure_hits";
        (match t.live with
        | Some lv -> Obs.Window.add lv.lv_closure_hits 1
        | None -> ());
        Some cl
      | None ->
        let cl =
          Encode.closure ~repo:t.repo
            ~splicing:t.config.options.Concretizer.splicing ~pool:t.pool roots
        in
        Hashtbl.replace t.closures key cl;
        Obs.incr (obs t) "serve.closure_misses";
        (match t.live with
        | Some lv -> Obs.Window.add lv.lv_closure_misses 1
        | None -> ());
        Some cl
  in
  let snap = (t.reuse, t.generation, closure) in
  Mutex.unlock t.pool_mu;
  snap

(* ---- queue --------------------------------------------------------- *)

type admission = Admitted | Overloaded

let submit t job =
  Mutex.lock t.mu;
  let r =
    if (not t.running) || t.pending >= t.config.max_queue then begin
      t.rejected <- t.rejected + 1;
      Overloaded
    end
    else begin
      t.pending <- t.pending + 1;
      let i = t.submit_rr in
      t.submit_rr <- (i + 1) mod Array.length t.queues;
      Queue.push job t.queues.(i);
      Condition.signal t.nonempty;
      Admitted
    end
  in
  Mutex.unlock t.mu;
  r

(* Own queue first, then steal round-robin from the neighbours. *)
let pop_any t i =
  let n = Array.length t.queues in
  let rec go k =
    if k = n then None
    else
      let q = t.queues.((i + k) mod n) in
      if Queue.is_empty q then go (k + 1)
      else begin
        if k > 0 then Obs.incr (obs t) "serve.steals";
        Some (Queue.pop q)
      end
  in
  go 0

(* Blocks for work; [None] = shutdown and every queue drained, so a
   stopping server still answers everything it admitted. *)
let take_job t i =
  Mutex.lock t.mu;
  let rec go () =
    match pop_any t i with
    | Some j ->
      t.pending <- t.pending - 1;
      Mutex.unlock t.mu;
      Some j
    | None ->
      if not t.running then begin
        Mutex.unlock t.mu;
        None
      end
      else begin
        Condition.wait t.nonempty t.mu;
        go ()
      end
  in
  go ()

(* ---- responses ----------------------------------------------------- *)

let respond t conn v =
  let s = Sjson.Frame.encode v in
  Mutex.lock conn.c_wmu;
  (try write_all conn.c_fd s 0 (String.length s)
   with Unix.Unix_error _ ->
     (* Peer went away mid-request: drop the response, keep serving. *)
     Obs.incr (obs t) "serve.dropped_responses");
  Mutex.unlock conn.c_wmu

let status_of_result = function
  | Ok _ -> "ok"
  | Error (f : Concretizer.failure) ->
    if f.Concretizer.f_timeout then "timeout"
    else if
      String.length f.Concretizer.f_message >= 5
      && String.sub f.Concretizer.f_message 0 5 = "UNSAT"
    then "unsat"
    else "error"

(* The canonical solve answer: everything a response and a one-shot
   [Concretizer] run must agree on byte-for-byte, and nothing
   timing-dependent. Tests and the bench compare
   [Sjson.to_string (canonical_of_result r)] across transports. *)
let canonical_of_result (r : (Concretizer.outcome, Concretizer.failure) result) =
  match r with
  | Ok o ->
    let spec = List.hd o.Concretizer.solution.Decode.specs in
    Sjson.Object
      [ ("status", Sjson.String "ok");
        ("hash", Sjson.String (Spec.Concrete.dag_hash spec));
        ("spec", Sjson.String (Spec.Concrete.to_string spec));
        ( "costs",
          Sjson.Array
            (List.map
               (fun (p, c) -> Sjson.Array [ Sjson.Int p; Sjson.Int c ])
               o.Concretizer.stats.Concretizer.costs) ) ]
  | Error f when f.Concretizer.f_timeout ->
    Sjson.Object [ ("status", Sjson.String "timeout") ]
  | Error f ->
    Sjson.Object
      [ ("status", Sjson.String (status_of_result r));
        ("message", Sjson.String f.Concretizer.f_message) ]

let canonical_error msg =
  Sjson.Object
    [ ("status", Sjson.String "error"); ("message", Sjson.String msg) ]

let canonical_timeout = Sjson.Object [ ("status", Sjson.String "timeout") ]

(* ---- request handling ---------------------------------------------- *)

let field_string k j =
  match Sjson.member_opt k j with Some (Sjson.String s) -> Some s | _ -> None

let field_number k j =
  match Sjson.member_opt k j with
  | Some (Sjson.Int n) -> Some (float_of_int n)
  | Some (Sjson.Float f) -> Some f
  | _ -> None

let field_int k j =
  match Sjson.member_opt k j with Some (Sjson.Int n) -> Some n | _ -> None

let field_bool k j =
  match Sjson.member_opt k j with
  | Some (Sjson.Bool b) -> b
  | _ -> false

type worker_session =
  | No_session
  | Warm of Concretizer.Session.t * int  (* session, generation *)
  | Broken of string * int  (* create failed; don't retry this generation *)

type worker = {
  w_index : int;
  mutable w_warm : Concretizer.Warm.t option;
      (* the worker's delta-grounded universe; survives evictions *)
  mutable w_session : worker_session;
}

let budget_of ~conflicts ~deadline : Asp.Solver_intf.budget option =
  match (conflicts, deadline) with
  | None, None -> None
  | _ ->
    Some
      { Asp.Solver_intf.b_conflicts = conflicts;
        b_stop =
          Option.map (fun d () -> Obs.Clock.now_s () > d) deadline }

let solve_options t reuse =
  { t.config.options with Concretizer.reuse; mirrors = None }

(* CAS-borrow up to [want] idle-worker tokens for a portfolio race;
   returns how many were actually free (possibly 0 — the solve then
   runs single). Lock-free: competes only with other workers' borrows
   and returns. *)
let borrow_tokens t want =
  let rec go got =
    if got >= want then got
    else
      let cur = Atomic.get t.idle_tokens in
      if cur <= 0 then got
      else if Atomic.compare_and_set t.idle_tokens cur (cur - 1) then
        go (got + 1)
      else go got
  in
  if want <= 0 then 0 else go 0

let return_tokens t n =
  if n > 0 then ignore (Atomic.fetch_and_add t.idle_tokens n)

(* The worker's warm session for the current generation. The worker
   keeps a delta-grounded universe ([Concretizer.Warm]) across
   evictions: a generation bump applies the buildcache delta to the
   warm grounding instead of discarding it, and only the (cheap)
   solver session is rebuilt from the updated snapshot. Recycling
   likewise re-translates the existing grounding. [None] = warm-up
   failed (served fresh instead). *)
let ensure_session t w =
  let reuse, gen, _closure = pool_snapshot t t.roots in
  let worn_out s =
    match t.config.session_recycle with
    | Some cap when Concretizer.Session.solves s >= cap ->
      Obs.incr (obs t) "serve.session_recycles";
      (match t.live with
      | Some lv -> Obs.Window.add lv.lv_recycles 1
      | None -> ());
      true
    | _ -> false
  in
  (match w.w_session with
  | Warm (s, g) when g = gen && not (worn_out s) -> ()
  | Broken (_, g) when g = gen -> ()
  | _ ->
    Obs.incr (obs t) "serve.session_builds";
    w.w_session <-
      (match
         (match w.w_warm with
         | Some warm ->
           ignore (Concretizer.Warm.set_pool warm reuse);
           Ok warm
         | None -> (
           match
             Concretizer.Warm.create ~repo:t.repo
               ~options:(solve_options t reuse)
               ?ground_cache:t.config.ground_cache ~roots:t.roots ()
           with
           | Ok warm ->
             w.w_warm <- Some warm;
             (match (t.live, t.config.ground_cache) with
             | Some lv, Some _ ->
               if Concretizer.Warm.from_cache warm then
                 Obs.Window.add lv.lv_gcache_hits 1
               else Obs.Window.add lv.lv_gcache_misses 1
             | _ -> ());
             Ok warm
           | Error e -> Error e))
       with
      | Ok warm -> Warm (Concretizer.Warm.session warm, gen)
      | Error e -> Broken (e, gen)
      | exception e -> Broken (Printexc.to_string e, gen)));
  match w.w_session with
  | Warm (s, _) -> Some s
  | Broken _ | No_session -> None

(* Serve one solve request; returns (status, canonical result, extra
   response fields). [robs] is the request-scoped observation context
   (the shared server context teed with the job's flight-recorder
   context) — concretizer spans recorded through it land in both.
   Raises on internal faults (caught by the caller and answered as a
   typed error). *)
let run_solve t w job robs =
  let payload = job.j_payload in
  if t.config.fault_injection && field_bool "boom" payload then
    failwith "injected worker fault";
  match field_string "spec" payload with
  | None -> ("error", canonical_error "solve: missing \"spec\" field", [])
  | Some text -> (
    match Encode.request_of_string text with
    | exception Spec.Parser.Parse_error e ->
      ("error", canonical_error ("parse error: " ^ e), [])
    | request ->
      let now = Obs.Clock.now_s () in
      let expired =
        match job.j_deadline with Some d -> now > d | None -> false
      in
      if expired then
        (* Died waiting in the queue: answer without touching a solver,
           so an overload burst drains in bounded time. *)
        ("timeout", canonical_timeout, [ ("expired_in_queue", Sjson.Bool true) ])
      else begin
        let conflicts =
          match field_int "conflicts" payload with
          | Some n -> Some n
          | None -> t.config.default_conflicts
        in
        let budget = budget_of ~conflicts ~deadline:job.j_deadline in
        let mode =
          match field_string "mode" payload with
          | Some "fresh" -> Fresh
          | Some "session" -> Session
          | _ -> t.config.default_mode
        in
        let root =
          request.Encode.req.Spec.Abstract.root.Spec.Abstract.name
        in
        let rid_attr = [ ("rid", Obs.S job.j_rid) ] in
        (* Portfolio admission: the request may ask for a width (the
           "portfolio" field, capped by the server's configured bound),
           but the race only materializes to the extent idle worker
           slots exist right now — borrowed tokens come back when the
           race ends. Under load the pool is empty and this degrades to
           a plain single solve. *)
        let pf_want =
          let cap = max 1 t.config.portfolio in
          match field_int "portfolio" payload with
          | Some n -> min (max 1 n) cap
          | None -> cap
        in
        let pf_tokens = borrow_tokens t (pf_want - 1) in
        let pf_n = 1 + pf_tokens in
        Fun.protect ~finally:(fun () -> return_tokens t pf_tokens)
        @@ fun () ->
        let fresh () =
          let reuse, gen, closure = pool_snapshot t [ root ] in
          let r =
            Concretizer.concretize_v ~repo:t.repo
              ~options:
                { (solve_options t reuse) with
                  Concretizer.obs = robs;
                  portfolio = pf_n }
              ?budget ?closure ~attrs:rid_attr [ request ]
          in
          (r, "fresh", gen)
        in
        let result, mode_used, gen =
          match mode with
          | Fresh -> fresh ()
          | Session -> (
            (* Roots outside the warm universe can't be served under
               assumptions; fall back to a fresh solve. *)
            if not (Hashtbl.mem t.roots_set root) then fresh ()
            else
              match ensure_session t w with
              | None -> fresh ()
              | Some s ->
                let gen =
                  match w.w_session with Warm (_, g) -> g | _ -> assert false
                in
                Concretizer.Session.set_portfolio s pf_n;
                ( Concretizer.Session.solve ?budget ~obs:robs ~attrs:rid_attr s
                    request,
                  "session",
                  gen ))
        in
        ( status_of_result result,
          canonical_of_result result,
          ("mode", Sjson.String mode_used)
          :: ("generation", Sjson.Int gen)
          :: (if pf_n > 1 then [ ("portfolio", Sjson.Int pf_n) ] else []) )
      end)

let hist_summary_json h =
  Sjson.Object
    [ ("count", Sjson.Int (Obs.Hist.count h));
      ( "mean",
        Sjson.Float
          (if Obs.Hist.count h = 0 then 0.
           else Obs.Hist.sum h /. float_of_int (Obs.Hist.count h)) );
      ("p50", Sjson.Float (Obs.Hist.quantile h 0.5));
      ("p90", Sjson.Float (Obs.Hist.quantile h 0.9));
      ("p99", Sjson.Float (Obs.Hist.quantile h 0.99));
      ("max", Sjson.Float (Obs.Hist.max_value h)) ]

(* The rolling-window block of a "stats" answer. [window_s] comes from
   the request's "window" field (seconds), rounded up to slot
   granularity and clamped to the horizon; default = full horizon. *)
let live_stats_json lv ?window_s () =
  let covered = Obs.Window.hist_covered_s ?window_s lv.lv_solve_ms in
  let solve = Obs.Window.merged ?window_s lv.lv_solve_ms in
  let queue = Obs.Window.merged ?window_s lv.lv_queue_ms in
  let total = Obs.Window.total ?window_s lv.lv_requests in
  let count c = Obs.Window.total ?window_s c in
  let rate n = if total = 0 then 0. else float_of_int n /. float_of_int total in
  let hit_rate h m =
    let s = h + m in
    if s = 0 then 0. else float_of_int h /. float_of_int s
  in
  let ok = count lv.lv_ok
  and unsat = count lv.lv_unsat
  and timeout = count lv.lv_timeout
  and error = count lv.lv_error
  and overloaded = count lv.lv_overloaded
  and deadline_miss = count lv.lv_deadline_miss
  and cl_hits = count lv.lv_closure_hits
  and cl_misses = count lv.lv_closure_misses
  and gc_hits = count lv.lv_gcache_hits
  and gc_misses = count lv.lv_gcache_misses in
  Sjson.Object
    ([ ("window_s", Sjson.Float covered);
       ("horizon_s", Sjson.Float (Obs.Window.hist_horizon_s lv.lv_solve_ms));
       ("requests", Sjson.Int total);
       ("rps", Sjson.Float (float_of_int total /. covered));
       ("solve_ms", hist_summary_json solve);
       ("queue_ms", hist_summary_json queue);
       ( "statuses",
         Sjson.Object
           [ ("ok", Sjson.Int ok);
             ("unsat", Sjson.Int unsat);
             ("timeout", Sjson.Int timeout);
             ("error", Sjson.Int error);
             ("overloaded", Sjson.Int overloaded) ] );
       ("overload_rate", Sjson.Float (rate overloaded));
       ("deadline_miss_rate", Sjson.Float (rate deadline_miss));
       ("error_rate", Sjson.Float (rate error));
       ("closure_hit_rate", Sjson.Float (hit_rate cl_hits cl_misses));
       ("ground_cache_hit_rate", Sjson.Float (hit_rate gc_hits gc_misses));
       ("session_recycles", Sjson.Int (count lv.lv_recycles)) ]
    @
    match lv.lv_recorder with
    | None -> []
    | Some r ->
      [ ( "recorder",
          Sjson.Object
            [ ("seen", Sjson.Int (Obs.Recorder.seen r));
              ("kept", Sjson.Int (Obs.Recorder.kept r));
              ("capacity", Sjson.Int (Obs.Recorder.capacity r)) ] ) ])

let run_stats t payload =
  Mutex.lock t.mu;
  let pending = t.pending and served = t.served and rejected = t.rejected in
  Mutex.unlock t.mu;
  Sjson.Object
    ([ ("status", Sjson.String "ok");
       ("workers", Sjson.Int (Array.length t.queues));
       ("pending", Sjson.Int pending);
       ("served", Sjson.Int served);
       ("rejected", Sjson.Int rejected);
       ("generation", Sjson.Int (generation t));
       ("digest", Sjson.String (pool_digest_of t));
       ("roots", Sjson.Int (List.length t.roots));
       ("uptime_s", Sjson.Float (Obs.Clock.now_s () -. t.started_s)) ]
    @
    match t.live with
    | None -> []
    | Some lv ->
      let window_s = field_number "window" payload in
      [ ("window", live_stats_json lv ?window_s ()) ])

(* One flight-recorder entry on the wire; "trace" is a self-contained
   Perfetto-loadable object. *)
let trace_json (tr : Obs.Recorder.trace) =
  Sjson.Object
    [ ("rid", Sjson.String tr.Obs.Recorder.tr_rid);
      ("op", Sjson.String tr.Obs.Recorder.tr_op);
      ("status", Sjson.String tr.Obs.Recorder.tr_status);
      ( "keep",
        Sjson.String (Obs.Recorder.keep_class_to_string tr.Obs.Recorder.tr_keep)
      );
      ("worker", Sjson.Int tr.Obs.Recorder.tr_worker);
      ("age_s", Sjson.Float (Obs.Clock.now_s () -. tr.Obs.Recorder.tr_start_s));
      ("dur_ms", Sjson.Float tr.Obs.Recorder.tr_dur_ms);
      ("queue_ms", Sjson.Float tr.Obs.Recorder.tr_queue_ms);
      ("trace", Obs.Sink.chrome_events tr.Obs.Recorder.tr_events) ]

let run_dump t payload =
  match t.live with
  | Some { lv_recorder = Some r; _ } ->
    let n = match field_int "n" payload with Some n -> max 0 n | None -> 32 in
    let keep =
      match field_string "keep" payload with
      | Some s -> Obs.Recorder.keep_class_of_string s
      | None -> None
    in
    let traces = Obs.Recorder.traces ~n ?keep r in
    Sjson.Object
      [ ("status", Sjson.String "ok");
        ("seen", Sjson.Int (Obs.Recorder.seen r));
        ("kept", Sjson.Int (Obs.Recorder.kept r));
        ("returned", Sjson.Int (List.length traces));
        ("traces", Sjson.Array (List.map trace_json traces)) ]
  | _ -> canonical_error "dump: flight recorder disabled"

let handle_job t w job =
  Fun.protect ~finally:(fun () -> conn_job_end job.j_conn) @@ fun () ->
  let queue_ms = (Obs.Clock.now_s () -. job.j_received) *. 1000. in
  Obs.observe (obs t) "serve.queue_ms" queue_ms;
  let op = job.j_op in
  (* [robs] carries every span of this request into both the shared
     server context (--trace) and the job's flight-recorder context.
     When both are disabled this is [Obs.disabled]. *)
  let robs = Obs.tee (obs t) job.j_obs in
  Obs.instant job.j_obs
    ~attrs:[ ("worker", Obs.I w.w_index); ("queue_ms", Obs.F queue_ms) ]
    "serve.dequeued";
  let status, result, extra =
    Obs.with_span robs ~cat:"serve" "serve.request"
      ~attrs:
        [ ("rid", Obs.S job.j_rid);
          ("worker", Obs.I w.w_index);
          ("op", Obs.S op) ]
    @@ fun span ->
    let r =
      match
        match op with
        | "solve" -> run_solve t w job robs
        | "ping" -> ("ok", Sjson.Object [ ("status", Sjson.String "pong") ], [])
        | "stats" -> ("ok", run_stats t job.j_payload, [])
        | "dump" -> ("ok", run_dump t job.j_payload, [])
        | op -> ("error", canonical_error ("unknown op: " ^ op), [])
      with
      | r -> r
      | exception e ->
        (* A worker fault answers the request instead of wedging the
           queue; the domain lives on. *)
        Obs.incr (obs t) "serve.worker_faults";
        ("error", canonical_error (Printexc.to_string e), [])
    in
    let status, _, _ = r in
    Obs.set_attr span "status" (Obs.S status);
    r
  in
  Obs.incr (obs t) ("serve.status." ^ status);
  let latency_ms = (Obs.Clock.now_s () -. job.j_received) *. 1000. in
  Obs.observe (obs t) "serve.latency_ms" latency_ms;
  if op = "solve" then Obs.observe (obs t) "serve.solve_ms" latency_ms;
  let deadline_missed = status = "timeout" && job.j_deadline <> None in
  (match t.live with
  | Some lv ->
    Obs.Window.observe lv.lv_queue_ms queue_ms;
    if op = "solve" then Obs.Window.observe lv.lv_solve_ms latency_ms;
    live_count lv ~status ~deadline_missed;
    (* Tail-sampling: the keep decision sees the completed request.
       Only solve traces (and anything that errored) compete for ring
       space — pings and stats polls would crowd out the signal. *)
    (match lv.lv_recorder with
    | Some r when op = "solve" || status <> "ok" ->
      ignore
        (Obs.Recorder.record r ~rid:job.j_rid ~op ~status ~deadline_missed
           ~worker:w.w_index ~start_s:job.j_received ~dur_ms:latency_ms
           ~queue_ms ~events:(Obs.events job.j_obs))
    | _ -> ())
  | None -> ());
  Mutex.lock t.mu;
  t.served <- t.served + 1;
  Mutex.unlock t.mu;
  respond t job.j_conn
    (Sjson.Object
       [ ("id", job.j_id);
         ("rid", Sjson.String job.j_rid);
         ("status", Sjson.String status);
         ("result", result);
         ( "server",
           Sjson.Object
             (("worker", Sjson.Int w.w_index)
             :: ("queue_ms", Sjson.Float queue_ms)
             :: ("latency_ms", Sjson.Float latency_ms)
             :: extra) ) ])

let worker_loop t i =
  let w = { w_index = i; w_warm = None; w_session = No_session } in
  let rec go () =
    match take_job t i with
    | None -> ()
    | Some job ->
      handle_job t w job;
      go ()
  in
  go ()

(* ---- connection I/O ------------------------------------------------ *)

let overloaded_response id rid =
  Sjson.Object
    [ ("id", id);
      ("rid", Sjson.String rid);
      ("status", Sjson.String "overloaded");
      ( "result",
        Sjson.Object
          [ ("status", Sjson.String "overloaded");
            ("message", Sjson.String "queue full, retry later") ] ) ]

let frame_error_response msg =
  Sjson.Object
    [ ("id", Sjson.Null);
      ("status", Sjson.String "error");
      ("result", canonical_error msg) ]

(* Immediate (reader-thread) ops that must work even when the solve
   queue is saturated: admin and lifecycle. *)
let dispatch_inline t conn id rid op =
  match op with
  | "reload" ->
    let result =
      match t.config.reuse_source with
      | None -> canonical_error "reload: no reuse source configured"
      | Some f ->
        let changed = set_reuse t (f ()) in
        Sjson.Object
          [ ("status", Sjson.String "ok");
            ("changed", Sjson.Bool changed);
            ("generation", Sjson.Int (generation t));
            ("digest", Sjson.String (pool_digest_of t)) ]
    in
    respond t conn
      (Sjson.Object
         [ ("id", id);
           ("rid", Sjson.String rid);
           ("status", Sjson.String "ok");
           ("result", result) ]);
    `Continue
  | "shutdown" ->
    respond t conn
      (Sjson.Object
         [ ("id", id);
           ("rid", Sjson.String rid);
           ("status", Sjson.String "ok");
           ("result", Sjson.Object [ ("status", Sjson.String "stopping") ]) ]);
    `Shutdown
  | _ -> `Not_inline

let request_stop t =
  Mutex.lock t.mu;
  let was_running = t.running in
  if was_running then begin
    t.running <- false;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mu;
  if was_running then begin
    (* Wake the acceptor with a throwaway connection. *)
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX t.sock_path)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with Unix.Unix_error _ -> ()
  end

let dispatch t conn payload =
  let id =
    match Sjson.member_opt "id" payload with Some v -> v | None -> Sjson.Null
  in
  let op = match field_string "op" payload with Some o -> o | None -> "solve" in
  let rid = rid_of t payload in
  match dispatch_inline t conn id rid op with
  | `Shutdown -> request_stop t
  | `Continue -> ()
  | `Not_inline ->
    let now = Obs.Clock.now_s () in
    let deadline_ms =
      match field_number "deadline_ms" payload with
      | Some ms -> Some ms
      | None -> t.config.default_deadline_ms
    in
    (* The per-request context is created at frame decode, so its epoch
       is the moment the request entered the server: the gap before
       "serve.dequeued" is the queue wait, visible in the trace. *)
    let j_obs =
      match t.live with
      | Some { lv_recorder = Some _; _ } when op = "solve" -> Obs.create ()
      | _ -> Obs.disabled
    in
    Obs.instant j_obs
      ~attrs:[ ("rid", Obs.S rid); ("op", Obs.S op) ]
      "serve.received";
    let job =
      { j_conn = conn;
        j_id = id;
        j_rid = rid;
        j_op = op;
        j_payload = payload;
        j_received = now;
        j_deadline = Option.map (fun ms -> now +. (ms /. 1000.)) deadline_ms;
        j_obs }
    in
    conn_job_begin conn;
    (match submit t job with
    | Admitted -> ()
    | Overloaded ->
      Obs.incr (obs t) "serve.status.overloaded";
      (match t.live with
      | Some lv -> live_count lv ~status:"overloaded" ~deadline_missed:false
      | None -> ());
      respond t conn (overloaded_response id rid);
      conn_job_end conn)

let reader t conn =
  let dec = Sjson.Frame.create () in
  let buf = Bytes.create 65536 in
  let stop = ref false in
  let rec drain () =
    match Sjson.Frame.next dec with
    | Some payload ->
      dispatch t conn payload;
      drain ()
    | None -> ()
    | exception Sjson.Frame.Error e ->
      Obs.incr (obs t) "serve.bad_frames";
      respond t conn (frame_error_response (Sjson.Frame.error_to_string e));
      (match e with
      | Sjson.Frame.Bad_payload _ ->
        (* The bad payload was consumed whole; framing is still
           aligned, keep serving this connection. *)
        drain ()
      | Sjson.Frame.Oversized _ | Sjson.Frame.Truncated ->
        (* Can't resync without buffering the oversized body: answer
           and drop the connection. *)
        stop := true)
  in
  while not !stop do
    match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
    | 0 ->
      stop := true;
      (* A partial trailing frame is a peer that died mid-send. *)
      (try Sjson.Frame.finish dec
       with Sjson.Frame.Error _ -> Obs.incr (obs t) "serve.truncated_frames")
    | n ->
      Sjson.Frame.feed dec (Bytes.sub_string buf 0 n) 0 n;
      drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      stop := true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  conn_reader_done conn

let accept_loop t =
  let running () =
    Mutex.lock t.mu;
    let r = t.running in
    Mutex.unlock t.mu;
    r
  in
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if running () then begin
        let conn = conn_create fd in
        ignore (Thread.create (fun () -> reader t conn) ());
        go ()
      end
      else Unix.close fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* ---- lifecycle ----------------------------------------------------- *)

let start ~repo ?(config = default_config) ~socket () =
  (* Workers write to peers that may vanish: surface EPIPE as the
     (handled) Unix_error, not a process kill. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind listen_fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "bind %s: %s" socket (Unix.error_message e))
  | () ->
    Unix.listen listen_fd 64;
    let workers = max 1 config.workers in
    let roots =
      (match config.session_roots with
      | [] ->
        List.filter_map
          (fun (p : Pkg.Package.t) ->
            if Pkg.Repo.is_virtual repo p.Pkg.Package.name then None
            else Some p.Pkg.Package.name)
          (Pkg.Repo.packages repo)
      | rs -> rs)
      |> List.sort_uniq String.compare
    in
    let roots_set = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace roots_set r ()) roots;
    let reuse = config.options.Concretizer.reuse in
    let t =
      { repo;
        config;
        sock_path = socket;
        listen_fd;
        roots;
        roots_set;
        mu = Mutex.create ();
        nonempty = Condition.create ();
        queues = Array.init workers (fun _ -> Queue.create ());
        submit_rr = 0;
        pending = 0;
        running = true;
        served = 0;
        rejected = 0;
        pool_mu = Mutex.create ();
        reuse;
        pool = Encode.pool_of_specs reuse;
        digest = pool_digest reuse;
        generation = 0;
        closures = Hashtbl.create 64;
        idle_tokens = Atomic.make (max 0 (workers - 1));
        started_s = Obs.Clock.now_s ();
        rid_counter = Atomic.make 0;
        live = Option.map make_live config.telemetry;
        accept_thread = None;
        domains = [] }
    in
    t.domains <-
      List.init workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    Ok t

let socket_path t = t.sock_path

(* Block until the server has stopped (a client sent "shutdown", or
   [stop] was called from another thread) and every admitted request
   was answered. *)
let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  List.iter Domain.join t.domains;
  t.domains <- [];
  t.accept_thread <- None;
  try Unix.unlink t.sock_path with Unix.Unix_error _ -> ()

let stop t =
  request_stop t;
  wait t

(* ---- client -------------------------------------------------------- *)

module Client = struct
  type t = {
    path : string;
    retries : int;  (* extra attempts per rpc beyond the first *)
    backoff_ms : float;  (* base delay, doubling per retry *)
    mutable fd : Unix.file_descr option;
    mutable dec : Sjson.Frame.decoder;
    buf : Bytes.t;
    mutable next_id : int;
  }

  let dial path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

  let connect ?(retries = 0) ?(backoff_ms = 5.0) path =
    match dial path with
    | Error _ as e -> e
    | Ok fd ->
      Ok
        { path;
          retries;
          backoff_ms;
          fd = Some fd;
          dec = Sjson.Frame.create ();
          buf = Bytes.create 65536;
          next_id = 0 }

  let drop c =
    (match c.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    c.fd <- None

  let close c = drop c

  (* Re-dial and — critically — reset the frame decoder: bytes from a
     connection that died mid-frame must not prefix the new stream. *)
  let reconnect c =
    drop c;
    match dial c.path with
    | Error _ as e -> e
    | Ok fd ->
      c.fd <- Some fd;
      c.dec <- Sjson.Frame.create ();
      Ok ()

  let current_fd c =
    match c.fd with
    | Some fd -> Ok fd
    | None -> Error "connection closed"

  let send c v =
    match current_fd c with
    | Error _ as e -> e
    | Ok fd -> (
      let s = Sjson.Frame.encode v in
      match write_all fd s 0 (String.length s) with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

  let recv c =
    let rec go fd =
      match Sjson.Frame.next c.dec with
      | Some v -> Ok v
      | None -> (
        match Unix.read fd c.buf 0 (Bytes.length c.buf) with
        | 0 -> Error "server closed the connection"
        | n ->
          Sjson.Frame.feed c.dec (Bytes.sub_string c.buf 0 n) 0 n;
          go fd
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
      | exception Sjson.Frame.Error e -> Error (Sjson.Frame.error_to_string e)
    in
    match current_fd c with Error _ as e -> e | Ok fd -> go fd

  let is_overloaded resp =
    match Sjson.member_opt "status" resp with
    | Some (Sjson.String "overloaded") -> true
    | _ -> false

  (* One request, one matching response. Responses to other (pipelined)
     ids are discarded — callers doing their own pipelining should use
     [send]/[recv] directly. *)
  let rpc_once c fields =
    let id = c.next_id in
    c.next_id <- id + 1;
    match send c (Sjson.Object (("id", Sjson.Int id) :: fields)) with
    | Error _ as e -> e
    | Ok () ->
      let rec await () =
        match recv c with
        | Error _ as e -> e
        | Ok resp -> (
          match Sjson.member_opt "id" resp with
          | Some (Sjson.Int i) when i = id -> Ok resp
          | _ -> await ())
      in
      await ()

  (* Bounded retry around [rpc_once]: a transport error (disconnect
     mid-request) reconnects and resends; a typed [overloaded] response
     backs off and resends on the same connection. With [retries = 0]
     (the default) behavior is exactly the old single-shot rpc — a
     caller that wants to see overloads (admission tests, load probes)
     still sees them. A request is retried wholesale, which assumes the
     operations are idempotent — true of this protocol (solves are
     pure, reload/shutdown are convergent). *)
  let rpc c fields =
    let sleep_for k =
      let d = c.backoff_ms *. (2.0 ** float_of_int k) /. 1000.0 in
      if d > 0.0 then Unix.sleepf d
    in
    let rec go k last =
      if k > c.retries then last
      else begin
        if k > 0 then sleep_for (k - 1);
        let attempt =
          if c.fd = None then
            match reconnect c with Error _ as e -> e | Ok () -> rpc_once c fields
          else rpc_once c fields
        in
        match attempt with
        | Ok resp when is_overloaded resp -> go (k + 1) (Ok resp)
        | Ok _ as ok -> ok
        | Error _ as err -> (
          (* transport failure: the old connection is poison *)
          match reconnect c with
          | Error _ as e -> go (k + 1) e
          | Ok () -> go (k + 1) err)
      end
    in
    go 0 (Error "no attempt made")

  let mode_field = function Session -> "session" | Fresh -> "fresh"

  let solve ?mode ?deadline_ms ?conflicts ?(boom = false) ?rid c spec =
    let fields =
      [ ("op", Sjson.String "solve"); ("spec", Sjson.String spec) ]
      @ (match mode with
        | Some m -> [ ("mode", Sjson.String (mode_field m)) ]
        | None -> [])
      @ (match deadline_ms with
        | Some ms -> [ ("deadline_ms", Sjson.Float ms) ]
        | None -> [])
      @ (match conflicts with
        | Some n -> [ ("conflicts", Sjson.Int n) ]
        | None -> [])
      @ (match rid with
        | Some r -> [ ("rid", Sjson.String r) ]
        | None -> [])
      @ if boom then [ ("boom", Sjson.Bool true) ] else []
    in
    rpc c fields

  let ping c = rpc c [ ("op", Sjson.String "ping") ]

  let stats ?window_s c =
    rpc c
      (("op", Sjson.String "stats")
      ::
      (match window_s with
      | Some w -> [ ("window", Sjson.Float w) ]
      | None -> []))

  let dump ?n ?keep c =
    rpc c
      (("op", Sjson.String "dump")
      :: ((match n with Some n -> [ ("n", Sjson.Int n) ] | None -> [])
         @
         match keep with
         | Some k -> [ ("keep", Sjson.String k) ]
         | None -> []))

  let reload c = rpc c [ ("op", Sjson.String "reload") ]

  let shutdown c = rpc c [ ("op", Sjson.String "shutdown") ]
end
