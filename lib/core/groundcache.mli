(** Persistent on-disk cache of layered groundings.

    Serializes {!Asp.Ground.layered} values (plain data, no closures)
    keyed by a {!Chash} digest over the assembled program text, the
    rendered base facts, and the buildcache digest — so a repo,
    program, or pool change lands on a different key and a stale file
    is never consulted. A format version guards the unmarshal against
    layout changes. All failures (missing dir, corrupt file, version
    mismatch, I/O errors) degrade to a cache miss. *)

val key : program:string -> pool:string -> string
(** Cache key from a program-layer digest and a pool digest. *)

val mem : dir:string -> string -> bool

val save :
  ?obs:Obs.ctx -> dir:string -> string -> Asp.Ground.layered -> bool
(** Write-once: [false] if the key already exists (or the write
    failed). Creates [dir] if missing; writes via temp file + rename,
    so concurrent writers of the same key are safe. Counts
    [groundcache.saves]. *)

val load : ?obs:Obs.ctx -> dir:string -> string -> Asp.Ground.layered option
(** [None] on any failure. Counts [groundcache.hits]/[groundcache.misses]. *)
