type suggestion = {
  replacement : string;
  replacement_version : Vers.Version.t;
  target : string;
  target_version : Vers.Version.t;
  exact : bool;
}

(* The virtuals a package provides, per the repository. *)
let virtuals_of repo name =
  match Pkg.Repo.find repo name with
  | None -> []
  | Some p ->
    List.map (fun (pr : Pkg.Package.provide_decl) -> pr.Pkg.Package.p_virtual)
      p.Pkg.Package.provides

let surface_of store (spec : Spec.Concrete.t) =
  let root = Spec.Concrete.root spec in
  let hash = Spec.Concrete.dag_hash spec in
  match Binary.Store.installed store ~hash with
  | None -> None
  | Some r ->
    Binary.Vfs.read_object (Binary.Store.vfs store)
      (Binary.Store.lib_path ~prefix:r.Binary.Store.prefix
         ~soname:(Binary.Store.soname_of root))
    |> Option.map (fun o -> o.Binary.Object_file.exports)

let candidate_pair repo a b =
  let name_a = Spec.Concrete.root a and name_b = Spec.Concrete.root b in
  if String.equal name_a name_b then
    not (String.equal (Spec.Concrete.dag_hash a) (Spec.Concrete.dag_hash b))
  else
    let va = virtuals_of repo name_a and vb = virtuals_of repo name_b in
    List.exists (fun v -> List.mem v vb) va

let scan ~repo ~specs ~store =
  (* One representative sub-spec per root node hash. *)
  let roots = Hashtbl.create 64 in
  List.iter
    (fun spec ->
      List.iter
        (fun (n : Spec.Concrete.node) ->
          let sub = Spec.Concrete.subdag spec n.Spec.Concrete.name in
          Hashtbl.replace roots (Spec.Concrete.dag_hash sub) sub)
        (Spec.Concrete.nodes spec))
    specs;
  let entries =
    Hashtbl.fold
      (fun _ spec acc ->
        match surface_of store spec with
        | Some surface -> (spec, surface) :: acc
        | None -> acc)
      roots []
  in
  let out = ref [] in
  List.iter
    (fun (replacement, r_surface) ->
      List.iter
        (fun (target, t_surface) ->
          if
            candidate_pair repo replacement target
            && Abi.compatible ~provider:r_surface ~required:t_surface
          then begin
            let rn = Spec.Concrete.root_node replacement in
            let tn = Spec.Concrete.root_node target in
            let s =
              { replacement = rn.Spec.Concrete.name;
                replacement_version = rn.Spec.Concrete.version;
                target = tn.Spec.Concrete.name;
                target_version = tn.Spec.Concrete.version;
                exact = Abi.compatible ~provider:t_surface ~required:r_surface }
            in
            if not (List.mem s !out) then out := s :: !out
          end)
        entries)
    entries;
  List.sort compare !out

let to_directive s =
  Printf.sprintf "can_splice \"%s@=%s\" ~when_:\"@=%s\"" s.target
    (Vers.Version.to_string s.target_version)
    (Vers.Version.to_string s.replacement_version)

let apply repo suggestions =
  List.fold_left
    (fun repo s ->
      match Pkg.Repo.find repo s.replacement with
      | None -> repo
      | Some p ->
        let target =
          Printf.sprintf "%s@=%s" s.target (Vers.Version.to_string s.target_version)
        in
        let when_ =
          Printf.sprintf "@=%s" (Vers.Version.to_string s.replacement_version)
        in
        (* Skip duplicates of hand-written directives. *)
        let already =
          List.exists
            (fun (d : Pkg.Package.splice_decl) ->
              Spec.Abstract.to_string d.Pkg.Package.s_target
              = Spec.Abstract.to_string (Spec.Parser.parse target))
            p.Pkg.Package.splices
        in
        if already then repo
        else Pkg.Repo.add repo (Pkg.Package.can_splice target ~when_ p))
    repo suggestions
