(* Greedy delta-debugging over universe descriptions.

   Given a universe that makes [still_fails] true, repeatedly try
   structural deletions — whole packages, then individual dependencies,
   conflicts, splices, versions, cache roots and requests — keeping any
   deletion that preserves the failure, until a fixpoint. The result is
   a (locally) minimal reproducer that [Gen.to_ocaml] renders as a
   paste-ready regression test. *)

let remove_nth n xs =
  List.filteri (fun i _ -> i <> n) xs

(* Deleting a package must not leave dangling references: drop the
   deps, splices, cache roots and requests that mention it. A request
   list must stay non-empty for the universe to test anything. *)
let mentions name text =
  (* spec texts look like "p3", "p3@2.0", "p2 ^prov1": the package
     appears as a whole token, possibly version-suffixed *)
  String.split_on_char ' ' text
  |> List.concat_map (String.split_on_char '^')
  |> List.exists (fun tok ->
         let tok =
           match String.index_opt tok '@' with
           | Some i -> String.sub tok 0 i
           | None -> tok
         in
         tok = name)

let drop_package (u : Gen.t) name =
  let pkgs =
    List.filter_map
      (fun (p : Gen.upkg) ->
        if p.Gen.up_name = name then None
        else
          Some
            { p with
              Gen.up_deps =
                List.filter
                  (fun (d : Gen.udep) -> not (mentions name d.Gen.ud_target))
                  p.Gen.up_deps;
              Gen.up_splices =
                List.filter (fun (t, _) -> not (mentions name t)) p.Gen.up_splices })
      u.Gen.u_pkgs
  in
  let requests = List.filter (fun r -> not (mentions name r)) u.Gen.u_requests in
  if requests = [] then None
  else
    Some
      { Gen.u_pkgs = pkgs;
        u_cache_roots =
          List.filter (fun r -> not (mentions name r)) u.Gen.u_cache_roots;
        u_requests = requests }

(* Candidate one-step reductions, coarsest first. *)
let candidates (u : Gen.t) =
  let pkg_drops =
    List.filter_map (fun (p : Gen.upkg) -> drop_package u p.Gen.up_name) u.Gen.u_pkgs
  in
  let with_pkgs pkgs = { u with Gen.u_pkgs = pkgs } in
  let per_pkg f =
    List.concat
      (List.mapi
         (fun i (p : Gen.upkg) ->
           List.map
             (fun p' ->
               with_pkgs (List.mapi (fun j q -> if j = i then p' else q) u.Gen.u_pkgs))
             (f p))
         u.Gen.u_pkgs)
  in
  let dep_drops =
    per_pkg (fun p ->
        List.mapi
          (fun i _ -> { p with Gen.up_deps = remove_nth i p.Gen.up_deps })
          p.Gen.up_deps)
  in
  let conflict_drops =
    per_pkg (fun p ->
        List.mapi
          (fun i _ -> { p with Gen.up_conflicts = remove_nth i p.Gen.up_conflicts })
          p.Gen.up_conflicts)
  in
  let splice_drops =
    per_pkg (fun p ->
        List.mapi
          (fun i _ -> { p with Gen.up_splices = remove_nth i p.Gen.up_splices })
          p.Gen.up_splices)
  in
  let version_drops =
    per_pkg (fun p ->
        if List.length p.Gen.up_versions <= 1 then []
        else
          List.mapi
            (fun i _ -> { p with Gen.up_versions = remove_nth i p.Gen.up_versions })
            p.Gen.up_versions)
  in
  let variant_drops =
    per_pkg (fun p ->
        match p.Gen.up_variant with
        | Some _ -> [ { p with Gen.up_variant = None } ]
        | None -> [])
  in
  let cache_drops =
    List.mapi
      (fun i _ -> { u with Gen.u_cache_roots = remove_nth i u.Gen.u_cache_roots })
      u.Gen.u_cache_roots
  in
  let request_drops =
    if List.length u.Gen.u_requests <= 1 then []
    else
      List.mapi
        (fun i _ -> { u with Gen.u_requests = remove_nth i u.Gen.u_requests })
        u.Gen.u_requests
  in
  pkg_drops @ request_drops @ cache_drops @ dep_drops @ conflict_drops
  @ splice_drops @ version_drops @ variant_drops

let shrink ~still_fails u =
  let rec fixpoint u =
    match List.find_opt still_fails (candidates u) with
    | Some smaller -> fixpoint smaller
    | None -> u
  in
  if still_fails u then fixpoint u else u
