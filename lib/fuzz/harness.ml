(* Top-level fuzzing loop: generate a universe per round, run every
   oracle over it, and on failure shrink the universe to a minimal
   reproducer and print it as paste-ready OCaml.

   Deterministic: round [k] of [run ~seed] always sees the same
   universe, so a one-line report ("seed 42 round 17") reproduces any
   failure exactly. *)

type injection = Drop_pb | Skip_unfounded

let injection_of_string = function
  | "pb" | "drop_pb" -> Some Drop_pb
  | "unfounded" | "skip_unfounded" -> Some Skip_unfounded
  | _ -> None

type failure = {
  round : int;
  violations : string list;  (* from the original universe *)
  shrunk : Gen.t;  (* minimal universe still violating *)
  shrunk_violations : string list;
}

type report = {
  seed : int;
  rounds : int;
  stats : Oracle.stats;
  failures : failure list;
}

let with_injection inject f =
  match inject with
  | None -> f ()
  | Some Drop_pb ->
    Asp.Sat.hook_drop_pb := true;
    Fun.protect ~finally:(fun () -> Asp.Sat.hook_drop_pb := false) f
  | Some Skip_unfounded ->
    Asp.Logic.hook_skip_unfounded := true;
    Fun.protect ~finally:(fun () -> Asp.Logic.hook_skip_unfounded := false) f

let universe ~seed ~round = Gen.generate (Rng.create ((seed * 1_000_003) + round))

let run ?(log = ignore) ?inject ?(obs = Obs.disabled) ~seed ~rounds () =
  let stats = Oracle.fresh_stats () in
  let failures = ref [] in
  Obs.with_span obs ~cat:"fuzz" "fuzz"
    ~attrs:[ ("seed", Obs.I seed); ("rounds", Obs.I rounds) ]
  @@ fun _span ->
  with_injection inject (fun () ->
      for round = 0 to rounds - 1 do
        let u = universe ~seed ~round in
        Obs.with_span obs ~cat:"fuzz" "fuzz.round"
          ~attrs:[ ("round", Obs.I round) ]
        @@ fun rspan ->
        Obs.incr obs "fuzz.rounds";
        match Oracle.check ~stats u with
        | [] ->
          Obs.set_attr rspan "violations" (Obs.I 0);
          if round mod 50 = 0 then
            log (Printf.sprintf "round %d ok (%s)" round (Gen.summary u))
        | violations ->
          Obs.set_attr rspan "violations" (Obs.I (List.length violations));
          Obs.incr obs ~by:(List.length violations) "fuzz.violations";
          log
            (Printf.sprintf "round %d: %d violation(s); shrinking %s" round
               (List.length violations) (Gen.summary u));
          let still_fails u' = Oracle.check u' <> [] in
          let shrunk =
            Obs.with_span obs ~cat:"fuzz" "fuzz.shrink" (fun _ ->
                Shrink.shrink ~still_fails u)
          in
          failures :=
            { round;
              violations;
              shrunk;
              shrunk_violations = Oracle.check shrunk }
            :: !failures
      done);
  { seed; rounds; stats; failures = List.rev !failures }

let pp_failure fmt f =
  Format.fprintf fmt "round %d: %d violation(s)@." f.round
    (List.length f.violations);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.violations;
  Format.fprintf fmt "shrunk to %s:@." (Gen.summary f.shrunk);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.shrunk_violations;
  Format.fprintf fmt "--- paste-ready reproducer ---@.%s" (Gen.to_ocaml f.shrunk)

let pp_report fmt r =
  Format.fprintf fmt "fuzz: seed %d, %d rounds, %a@." r.seed r.rounds
    Oracle.pp_stats r.stats;
  match r.failures with
  | [] -> Format.fprintf fmt "no violations@."
  | fs ->
    Format.fprintf fmt "%d failing round(s)@." (List.length fs);
    List.iter (fun f -> Format.fprintf fmt "%a" pp_failure f) fs
