(* Independent checker for the SAT core's refutation certificates.

   The solver under test ([Asp.Sat]) emits a step list: inputs
   (trusted), PB-derived lemmas (checked by a weight sum against the
   recorded constraint — no search), and derived clauses (checked by
   reverse unit propagation). This module shares no code with the
   solver: it is a minimal two-watched-literal propagator written from
   scratch, so a bug in the solver's propagation or conflict analysis
   cannot also hide here.

   A certificate is accepted iff every step checks AND the empty
   clause is established — i.e. the UNSAT claim is proved, not just
   plausible. *)

type lit = int

let lit_not l = l lxor 1
let lit_var l = l lsr 1

module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 4 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.len
  let shrink v n = v.len <- n
end

(* Clauses carry a tombstone so [P_delete] steps can retire them: the
   solver's reduce_db really removes clauses, and the checker must not
   keep using them for later RUP checks (that would certify proofs the
   solver's own database can no longer support). Dead clauses are
   dropped lazily as propagation walks the watch lists. *)
type clause = { lits : int array; mutable dead : bool }

let dummy_clause = { lits = [||]; dead = false }

type t = {
  mutable nvars : int;
  mutable assign : Bytes.t;  (* per var: 0 unassigned, 1 true, 2 false *)
  mutable watches : clause Vec.t array;  (* per lit *)
  trail : int Vec.t;
  mutable qhead : int;
  mutable contradiction : bool;
  pbs : ((int * lit) list * int) Vec.t;
  (* int-hash of sorted literals -> (sorted literals, clause) pairs,
     for deletion lookup. Keyed by a cheap integer fold rather than the
     literal list itself: polymorphic hashing/equality of lists walks
     the spine on every probe, which made deletion-heavy inprocessing
     proofs quadratic to check. Exact match is confirmed against the
     stored sorted array. *)
  db : (int, (int array * clause) list ref) Hashtbl.t;
}

(* Order-independent is not needed (keys are built from sorted lists),
   but the fold must be cheap and spread adjacent literal ids. *)
let clause_key lits =
  List.fold_left (fun h l -> ((h * 31) + l) land max_int) 17 lits

let arrays_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let create () =
  { nvars = 0;
    assign = Bytes.create 0;
    watches = [||];
    trail = Vec.create 0;
    qhead = 0;
    contradiction = false;
    pbs = Vec.create ([], 0);
    db = Hashtbl.create 64 }

let ensure_var t v =
  if v >= t.nvars then begin
    let old = t.nvars in
    t.nvars <- v + 1;
    if t.nvars > Bytes.length t.assign then begin
      let cap = max 16 (max t.nvars (2 * Bytes.length t.assign)) in
      let assign = Bytes.make cap '\000' in
      Bytes.blit t.assign 0 assign 0 old;
      t.assign <- assign;
      let watches = Array.make (2 * cap) (Vec.create dummy_clause) in
      Array.blit t.watches 0 watches 0 (2 * old);
      for i = 2 * old to (2 * cap) - 1 do
        watches.(i) <- Vec.create dummy_clause
      done;
      t.watches <- watches
    end
  end

let lit_value t l =
  match Bytes.get t.assign (lit_var l) with
  | '\000' -> 0
  | '\001' -> if l land 1 = 0 then 1 else 2
  | _ -> if l land 1 = 0 then 2 else 1

let assign_lit t l =
  Bytes.set t.assign (lit_var l) (if l land 1 = 0 then '\001' else '\002');
  Vec.push t.trail l

(* Unit propagation from [qhead]; [true] = conflict found. The watch
   lists stay consistent whether or not a conflict is hit, so checks
   can resume after an undo. *)
let propagate t =
  let conflict = ref false in
  while (not !conflict) && t.qhead < Vec.size t.trail do
    let l = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let falsified = lit_not l in
    let ws = t.watches.(l) in
    let i = ref 0 and j = ref 0 in
    while !i < Vec.size ws do
      let c = Vec.get ws !i in
      incr i;
      if c.dead then
        (* Deleted by a P_delete step: drop the watcher. *)
        ()
      else begin
      let lits = c.lits in
      if lits.(0) = falsified then begin
        lits.(0) <- lits.(1);
        lits.(1) <- falsified
      end;
      if lit_value t lits.(0) = 1 then begin
        Vec.set ws !j c;
        incr j
      end
      else begin
        let found = ref false in
        let k = ref 2 in
        let n = Array.length lits in
        while (not !found) && !k < n do
          if lit_value t lits.(!k) <> 2 then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- falsified;
            Vec.push t.watches.(lit_not lits.(1)) c;
            found := true
          end;
          incr k
        done;
        if not !found then begin
          Vec.set ws !j c;
          incr j;
          if lit_value t lits.(0) = 2 then begin
            (* Conflict: keep the remaining watchers and stop. *)
            while !i < Vec.size ws do
              Vec.set ws !j (Vec.get ws !i);
              incr i;
              incr j
            done;
            conflict := true
          end
          else assign_lit t lits.(0)
        end
      end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

let undo_to t mark =
  for i = Vec.size t.trail - 1 downto mark do
    Bytes.set t.assign (lit_var (Vec.get t.trail i)) '\000'
  done;
  Vec.shrink t.trail mark;
  t.qhead <- mark

(* Add a clause to the database under the current top-level
   assignment. Purely structural — validity was established by the
   caller (trusted input or a checked derivation). *)
let add_clause t lits =
  if not t.contradiction then begin
    (* Dedupe — a clause like [x; x] is unit, and watching the same
       literal twice would hide that. Tautologies carry no content. *)
    let lits = List.sort_uniq Int.compare lits in
    if List.exists (fun l -> List.mem (lit_not l) lits) lits then ()
    else begin
    List.iter (fun l -> ensure_var t (lit_var l)) lits;
    (* [arr] gets permuted by watch maintenance; the index keeps its
       own sorted copy for exact-match lookups. *)
    let key_arr = Array.of_list lits in
    let arr = Array.copy key_arr in
    (* Put two non-false literals up front to watch. *)
    let n = Array.length arr in
    let swap a b =
      let x = arr.(a) in
      arr.(a) <- arr.(b);
      arr.(b) <- x
    in
    let placed = ref 0 in
    (try
       for i = 0 to n - 1 do
         if lit_value t arr.(i) <> 2 then begin
           swap !placed i;
           incr placed;
           if !placed = 2 then raise Exit
         end
       done
     with Exit -> ());
    match !placed with
    | 0 ->
      (* every literal already false at top level (or clause empty) *)
      t.contradiction <- true
    | 1 ->
      (* effectively unit: enqueue and propagate at top level *)
      (if lit_value t arr.(0) = 0 then assign_lit t arr.(0));
      if propagate t then t.contradiction <- true
    | _ ->
      let c = { lits = arr; dead = false } in
      Vec.push t.watches.(lit_not arr.(0)) c;
      Vec.push t.watches.(lit_not arr.(1)) c;
      let key = clause_key lits in
      let bucket =
        match Hashtbl.find_opt t.db key with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add t.db key b;
          b
      in
      bucket := (key_arr, c) :: !bucket
    end
  end

(* Honor a deletion: find a live watched clause with these literals
   and tombstone it. Deletions of clauses the checker never watched
   (units absorbed at add time, tautologies, duplicates) are ignored —
   like classic drup-trim, dropping a deletion only ever makes later
   RUP checks easier for the prover being audited, never unsound. *)
let delete_clause t lits =
  let sorted = List.sort_uniq Int.compare lits in
  let key_arr = Array.of_list sorted in
  match Hashtbl.find_opt t.db (clause_key sorted) with
  | None -> ()
  | Some bucket -> (
    match
      List.find_opt
        (fun (k, c) -> (not c.dead) && arrays_equal k key_arr)
        !bucket
    with
    | None -> ()
    | Some (_, c) ->
      c.dead <- true;
      bucket := List.filter (fun (_, c') -> not c'.dead) !bucket)

(* Reverse-unit-propagation check: assume the negation of every
   literal, propagate, demand a conflict. *)
let rup t lits =
  if t.contradiction then true
  else begin
    let mark = Vec.size t.trail in
    let conflict = ref false in
    List.iter
      (fun l ->
        if not !conflict then begin
          ensure_var t (lit_var l);
          match lit_value t (lit_not l) with
          | 2 -> conflict := true (* l already true: clause implied *)
          | 0 -> assign_lit t (lit_not l)
          | _ -> ()
        end)
      lits;
    let ok = !conflict || propagate t in
    undo_to t mark;
    ok
  end

(* A clause is implied by [sum w_i l_i <= bound] alone iff the weights
   of the constraint literals whose negation appears in the clause
   already overshoot the bound: every assignment falsifying the clause
   makes all those literals true. *)
let pb_implies (wlits, bound) clause =
  let sum =
    List.fold_left
      (fun acc (w, l) -> if List.mem (lit_not l) clause then acc + w else acc)
      0 wlits
  in
  sum > bound

let pp_clause fmt lits =
  Format.fprintf fmt "[%s]"
    (String.concat " " (List.map string_of_int lits))

let check steps =
  let t = create () in
  let err i fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "step %d: %s" i s)) fmt in
  let rec go i = function
    | [] ->
      if t.contradiction then Ok ()
      else Error "no refutation: the proof never derives the empty clause"
    | step :: rest -> (
      match step with
      | Asp.Sat.P_input lits ->
        add_clause t lits;
        go (i + 1) rest
      | Asp.Sat.P_pb_input (wlits, bound) ->
        if List.exists (fun (w, _) -> w <= 0) wlits then
          err i "PB input with non-positive weight"
        else begin
          List.iter (fun (_, l) -> ensure_var t (lit_var l)) wlits;
          Vec.push t.pbs (wlits, bound);
          go (i + 1) rest
        end
      | Asp.Sat.P_pb_lemma (k, lits) ->
        if k < 0 || k >= Vec.size t.pbs then
          err i "PB lemma cites unknown constraint %d" k
        else if not (pb_implies (Vec.get t.pbs k) lits) then
          err i "PB lemma %a does not follow from constraint %d"
            pp_clause lits k
        else begin
          add_clause t lits;
          go (i + 1) rest
        end
      | Asp.Sat.P_derived lits ->
        if not (rup t lits) then
          err i "derived clause %a is not RUP" pp_clause lits
        else begin
          add_clause t lits;
          go (i + 1) rest
        end
      | Asp.Sat.P_delete lits ->
        delete_clause t lits;
        go (i + 1) rest)
  in
  go 0 steps

let check_outcome = function
  | Asp.Logic.Sat _ -> Error "outcome is SAT, nothing to certify"
  | Asp.Logic.Unsat None -> Error "UNSAT carries no proof (certify was off)"
  | Asp.Logic.Unsat (Some steps) -> check steps
