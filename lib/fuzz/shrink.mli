(** Greedy delta-debugging over universe descriptions.

    Given a universe on which [still_fails] holds, repeatedly try
    structural deletions — whole packages, then individual
    dependencies, conflicts, splices, versions, variants, cache roots
    and requests — keeping any deletion that preserves the failure,
    until a fixpoint. Deleting a package also drops everything that
    referenced it, so candidates are always well-formed. *)

val shrink : still_fails:(Gen.t -> bool) -> Gen.t -> Gen.t
