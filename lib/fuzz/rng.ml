(* Deterministic splitmix64 PRNG. The harness never touches [Random]:
   a (seed, round) pair fully determines a universe, so every failure
   report is reproducible from its two integers. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) golden }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (next t) land max_int mod n

let range t lo hi = lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

let chance t pct = int t 100 < pct

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let fork t tag = create (Int64.to_int (next t) land max_int lxor Hashtbl.hash tag)
