(* Parameterized random package universes.

   A universe is a first-class *description* — plain data, not a
   [Pkg.Repo.t] — so the shrinker can delete pieces of it and the
   harness can print any failing instance as a paste-ready regression
   test. [to_repo] compiles the description through the ordinary
   packaging DSL.

   Shape: layered DAGs (package [pi] may depend only on [pj], j > i, so
   cycles are impossible by construction), an optional virtual with two
   same-ABI-family providers (one declaring [can_splice] for the
   other), conditional and build-only dependencies, conflicts —
   including "poisoned" packages whose every version conflicts, the
   seed of certifiable UNSATs — plus a [stray] package nothing ever
   references (the metamorphic no-op cache entry) and a request list
   with occasional unsatisfiable version pins. *)

type udep = {
  ud_target : string;  (* dependency spec text, e.g. "p2@2.0" or "vmpi" *)
  ud_when : string option;
  ud_build_only : bool;
}

type upkg = {
  up_name : string;
  up_versions : string list;  (* newest-preferred first *)
  up_variant : bool option;  (* boolean variant "fast" with this default *)
  up_family : string option;
  up_provides : string option;
  up_deps : udep list;
  up_conflicts : (string * string option) list;  (* (forbidden self, when) *)
  up_splices : (string * string) list;  (* (target spec, when) *)
}

type t = {
  u_pkgs : upkg list;
  u_cache_roots : string list;  (* requests concretized+built into the cache *)
  u_requests : string list;
}

let plain name versions =
  { up_name = name;
    up_versions = versions;
    up_variant = None;
    up_family = None;
    up_provides = None;
    up_deps = [];
    up_conflicts = [];
    up_splices = [] }

let virtual_name = "vmpi"
let stray_name = "stray"

let core_names u =
  List.filter_map
    (fun p ->
      if p.up_provides = None && p.up_name <> stray_name then Some p.up_name
      else None)
    u.u_pkgs

let generate rng =
  let n = Rng.range rng 3 7 in
  let name i = Printf.sprintf "p%d" i in
  let with_virtual = Rng.chance rng 60 in
  let core =
    List.init n (fun i ->
        let versions =
          if Rng.chance rng 70 then [ "2.0"; "1.0" ] else [ "1.0" ]
        in
        let variant = if Rng.chance rng 50 then Some (Rng.bool rng) else None in
        let deps =
          List.concat
            (List.init (n - i - 1) (fun k ->
                 let j = i + 1 + k in
                 if not (Rng.chance rng 35) then []
                 else
                   let target =
                     if Rng.chance rng 20 then name j ^ "@2.0" else name j
                   in
                   let when_ =
                     if Rng.chance rng 25 then Some "@2.0"
                     else if variant <> None && Rng.chance rng 15 then
                       Some "+fast"
                     else None
                   in
                   [ { ud_target = target;
                       ud_when = when_;
                       ud_build_only = Rng.chance rng 15 } ]))
        in
        let conflicts =
          if variant <> None && Rng.chance rng 20 then
            [ ("+fast", Some "@1.0") ]
          else if Rng.chance rng 8 then
            (* poisoned: every declared version conflicts -> any
               solution through this package is UNSAT *)
            List.map (fun v -> ("@" ^ v, None)) versions
          else []
        in
        { (plain (name i) versions) with
          up_variant = variant;
          up_deps = deps;
          up_conflicts = conflicts })
  in
  let user = if with_virtual then Some (Rng.int rng n) else None in
  let core =
    match user with
    | None -> core
    | Some user ->
      List.mapi
        (fun i p ->
          if i = user then
            { p with
              up_deps =
                { ud_target = virtual_name; ud_when = None; ud_build_only = false }
                :: p.up_deps }
          else p)
        core
  in
  let providers =
    if not with_virtual then []
    else
      let prov i = Printf.sprintf "prov%d" i in
      let base i =
        { (plain (prov i) [ "1.0" ]) with
          up_family = Some "vmpi-abi";
          up_provides = Some virtual_name }
      in
      let p0 = base 0 in
      let p1 =
        if Rng.chance rng 50 then
          { (base 1) with up_splices = [ (prov 0 ^ "@1.0", "@1.0") ] }
        else base 1
      in
      [ p0; p1 ]
  in
  let stray = plain stray_name [ "1.0" ] in
  let requests =
    let reqs =
      List.concat
        (List.init n (fun i ->
             if not (Rng.chance rng 45) then []
             else if Rng.chance rng 20 then [ name i ^ "@9.9" ] (* never exists *)
             else if Rng.chance rng 25 then [ name i ^ "@2.0" ]
             else [ name i ]))
    in
    if reqs = [] then [ name 0 ] else reqs
  in
  let cache_roots =
    List.filter (fun r -> not (String.contains r '@') && Rng.chance rng 60) requests
  in
  (* When a provider declares [can_splice], set up the paper's
     scenario: cache the virtual's user built against the default
     provider, then request it pinned to the *other* provider — with
     splicing on, the only way to reuse the cached binary is a splice,
     so the splice-must-link oracle actually fires. *)
  let requests, cache_roots =
    match (user, providers) with
    | Some user, _ :: { up_splices = _ :: _; up_name = alt; _ } :: _
      when Rng.chance rng 70 ->
      let user_name = name user in
      ( (user_name ^ " ^" ^ alt) :: requests,
        user_name :: cache_roots )
    | _ -> (requests, cache_roots)
  in
  { u_pkgs = core @ providers @ [ stray ];
    u_cache_roots = cache_roots;
    u_requests = requests }

let to_repo u =
  let compile p =
    let open Pkg.Package in
    let pk = match p.up_family with
      | Some f -> make ~abi_family:f p.up_name
      | None -> make p.up_name
    in
    let pk = List.fold_left (fun pk v -> version v pk) pk p.up_versions in
    let pk =
      match p.up_variant with
      | Some d -> variant "fast" ~default:(Spec.Types.Bool d) pk
      | None -> pk
    in
    let pk =
      match p.up_provides with Some v -> provides v pk | None -> pk
    in
    let pk =
      List.fold_left
        (fun pk d ->
          let deptypes =
            if d.ud_build_only then Spec.Types.dt_build else Spec.Types.dt_both
          in
          depends_on ~deptypes ?when_:d.ud_when d.ud_target pk)
        pk p.up_deps
    in
    let pk =
      List.fold_left
        (fun pk (c, when_) -> conflicts ?when_ c pk)
        pk p.up_conflicts
    in
    List.fold_left
      (fun pk (target, when_) -> can_splice target ~when_ pk)
      pk p.up_splices
  in
  Pkg.Repo.of_packages (List.map compile u.u_pkgs)

(* Render the universe as paste-ready OCaml: a repo definition plus
   the requests, for dropping a shrunk failure into the test suite. *)
let to_ocaml u =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "let repo =\n  Pkg.Repo.of_packages\n    Pkg.Package.\n      [ ";
  let first = ref true in
  List.iter
    (fun p ->
      if not !first then pf ";\n        ";
      first := false;
      (match p.up_family with
      | Some f -> pf "make ~abi_family:%S %S" f p.up_name
      | None -> pf "make %S" p.up_name);
      List.iter (fun v -> pf " |> version %S" v) p.up_versions;
      (match p.up_variant with
      | Some d -> pf " |> variant \"fast\" ~default:(Bool %b)" d
      | None -> ());
      (match p.up_provides with Some v -> pf " |> provides %S" v | None -> ());
      List.iter
        (fun d ->
          pf " |> depends_on %S" d.ud_target;
          (match d.ud_when with Some w -> pf " ~when_:%S" w | None -> ());
          if d.ud_build_only then pf " ~deptypes:dt_build")
        p.up_deps;
      List.iter
        (fun (c, when_) ->
          pf " |> conflicts %S" c;
          match when_ with Some w -> pf " ~when_:%S" w | None -> ())
        p.up_conflicts;
      List.iter
        (fun (t, w) -> pf " |> can_splice %S ~when_:%S" t w)
        p.up_splices)
    u.u_pkgs;
  pf " ]\n\n";
  pf "let requests = [ %s ]\n"
    (String.concat "; " (List.map (Printf.sprintf "%S") u.u_requests));
  pf "let cache_roots = [ %s ]\n"
    (String.concat "; " (List.map (Printf.sprintf "%S") u.u_cache_roots));
  Buffer.contents b

let size u = List.length u.u_pkgs

let summary u =
  Printf.sprintf "%d packages, %d requests, %d cache roots" (size u)
    (List.length u.u_requests)
    (List.length u.u_cache_roots)
