(** Independent checker for the SAT core's refutation certificates.

    The solver under test ([Asp.Sat]) emits a step list: inputs
    (trusted), PB-derived lemmas (checked by a weight sum against the
    recorded constraint — no search), derived clauses (checked by
    reverse unit propagation), and deletions ([P_delete], emitted when
    the solver's learnt-DB reduction retires a clause — the checker
    tombstones its copy so its database propagates exactly what the
    solver's still can, in drup-trim style: deletions of clauses it
    never saw are ignored). This module shares no code with the
    solver: it is a minimal two-watched-literal propagator written from
    scratch, so a bug in the solver's propagation or conflict analysis
    cannot also hide here.

    A certificate is accepted iff every step checks {e and} the empty
    clause is established — the UNSAT claim is proved, not just
    plausible. *)

val check : Asp.Sat.proof_step list -> (unit, string) result

val check_outcome : Asp.Logic.outcome -> (unit, string) result
(** Convenience: certify a solver outcome directly. SAT outcomes and
    proofless UNSATs are errors. *)
