(** Independent checker for the SAT core's refutation certificates.

    The solver under test ([Asp.Sat]) emits a step list: inputs
    (trusted), PB-derived lemmas (checked by a weight sum against the
    recorded constraint — no search), and derived clauses (checked by
    reverse unit propagation). This module shares no code with the
    solver: it is a minimal two-watched-literal propagator written from
    scratch, so a bug in the solver's propagation or conflict analysis
    cannot also hide here.

    A certificate is accepted iff every step checks {e and} the empty
    clause is established — the UNSAT claim is proved, not just
    plausible. *)

val check : Asp.Sat.proof_step list -> (unit, string) result

val check_outcome : Asp.Logic.outcome -> (unit, string) result
(** Convenience: certify a solver outcome directly. SAT outcomes and
    proofless UNSATs are errors. *)
