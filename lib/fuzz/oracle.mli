(** Oracle harnesses: everything we can demand of the stack on a
    random universe without trusting the solver.

    - every SAT answer must pass [Core.Verify.check_solution] (an
      independent reimplementation of the semantics);
    - every UNSAT answer must carry a DRUP certificate accepted by the
      independent {!Drup} checker;
    - on small instances, answers are cross-checked against a
      brute-force reference enumerator (completeness, and a self-check
      of the enumerator on SAT answers);
    - [Old] and [Hash_attr] encodings must agree on optimum costs and
      the root DAG hash when splicing is off;
    - metamorphic: adding an irrelevant cached spec must not change
      the solution; a solver-chosen splice of a declared-compatible
      package must install by rewiring and link cleanly under [Abi]. *)

type stats = {
  mutable sat_verified : int;
  mutable unsat_certified : int;
  mutable brute_confirmed : int;
  mutable encodings_agreed : int;
  mutable metamorphic_ok : int;
  mutable splices_linked : int;
}

val fresh_stats : unit -> stats

val add_stats : stats -> stats -> unit
(** [add_stats acc s] accumulates [s] into [acc]. *)

val pp_stats : Format.formatter -> stats -> unit

val brute_has_solution : repo:Pkg.Repo.t -> Gen.t -> string -> bool option
(** Reference enumerator: does any candidate DAG satisfy the request?
    [None] when the choice space is too large to enumerate. *)

val check : ?stats:stats -> Gen.t -> string list
(** Run every oracle over one universe; returns violation
    descriptions (empty = all invariants held). Never raises: internal
    exceptions become violations. *)
