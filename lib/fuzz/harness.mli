(** Top-level fuzzing loop: generate a universe per round, run every
    oracle over it, and on failure shrink the universe to a minimal
    reproducer and render it as paste-ready OCaml.

    Deterministic: round [k] of [run ~seed] always sees the same
    universe, so a one-line report ("seed 42 round 17") reproduces any
    failure exactly. *)

type injection =
  | Drop_pb  (** make [Asp.Sat.add_pb_le] a no-op *)
  | Skip_unfounded  (** skip [Asp.Logic]'s stability check *)

val injection_of_string : string -> injection option

type failure = {
  round : int;
  violations : string list;  (** from the original universe *)
  shrunk : Gen.t;  (** minimal universe still violating *)
  shrunk_violations : string list;
}

type report = {
  seed : int;
  rounds : int;
  stats : Oracle.stats;
  failures : failure list;
}

val universe : seed:int -> round:int -> Gen.t
(** The universe tested at (seed, round) — for reproducing reports. *)

val run :
  ?log:(string -> unit) ->
  ?inject:injection ->
  ?obs:Obs.ctx ->
  seed:int ->
  rounds:int ->
  unit ->
  report
(** Fault injection is scoped to the call: the hooks are reset even on
    exceptions. With a tracing context, the whole run is a [fuzz] span
    with one [fuzz.round] child per round (violation counts attached)
    and [fuzz.shrink] spans around minimization. *)

val pp_failure : Format.formatter -> failure -> unit

val pp_report : Format.formatter -> report -> unit
