(** Resilience oracle: convergence under injected faults and crashes.

    For every generated universe paired with a seeded {!plan}, installs
    through the fault-injected {!Binary.Mirror} layer must be
    {e weather-proof}:

    - with fallback enabled, the install succeeds and the resulting
      store {!Binary.Store.fingerprint} equals the fault-free run's —
      degrading to source builds is allowed, diverging is not;
    - with fallback disabled, the install either converges identically
      or fails with a typed error leaving the store untouched;
    - a crash injected at an arbitrary store mutation, followed by
      {!Binary.Store.recover} and a resumed install, always converges,
      with no journal or staging residue;
    - a parallel ([--jobs N]) faultless run produces a report
      byte-identical to the serial one and the same fingerprint; a
      crash injected into a parallel faulty run recovers and resumes to
      convergence; and an install {e storm} — several installs racing
      onto one shared store through an adaptive mirror fleet, two of
      them the same spec — converges to the serial union with no claim
      left in flight.

    Like {!Oracle}, everything is a pure function of (seed, round), so
    any report line reproduces its failure exactly. *)

type plan = {
  pl_mirrors : (string * Binary.Mirror.fault_plan) list;
      (** one fault plan per simulated mirror, in failover order *)
  pl_crash_at : int;
      (** crash point; reduced mod the observed write count at use *)
  pl_jobs : int;  (** domain count for the parallel-schedule scenarios *)
}

val gen_plan : Rng.t -> plan

val plan_for : seed:int -> round:int -> plan
(** The fault plan tested at (seed, round) — for reproducing reports. *)

val pp_plan : Format.formatter -> plan -> unit

type stats = {
  mutable installs_converged : int;
  mutable degraded_converged : int;
      (** converged despite falling back to at least one source build *)
  mutable typed_failures_clean : int;
      (** no-fallback runs that failed typed with the store untouched *)
  mutable crashes_recovered : int;
  mutable parallel_converged : int;
      (** jobs-N faultless runs whose report was byte-identical to the
          serial one *)
  mutable parallel_crashes_recovered : int;
      (** crashes injected into jobs-N faulty runs that recovered and
          resumed to convergence *)
  mutable storms_converged : int;
      (** concurrent multi-install unions (shared store, adaptive
          fleet, duplicated spec for claim contention) that matched the
          serial union with no claim leaked *)
  mutable entries_quarantined : int;
}

val fresh_stats : unit -> stats

val add_stats : stats -> stats -> unit

val pp_stats : Format.formatter -> stats -> unit

val check : ?stats:stats -> Gen.t -> plan -> string list
(** All violations found running the resilience scenarios over one
    universe under one fault plan; [[]] means the oracle held. *)

type failure = {
  round : int;
  violations : string list;
  plan : plan;
  shrunk : Gen.t;
  shrunk_violations : string list;
}

type report = {
  seed : int;
  rounds : int;
  stats : stats;
  failures : failure list;
}

val run : ?log:(string -> unit) -> seed:int -> rounds:int -> unit -> report
(** Round [k] tests [Harness.universe ~seed ~round:k] under
    [plan_for ~seed ~round:k]; failing universes are shrunk with the
    plan held fixed. *)

val pp_failure : Format.formatter -> failure -> unit

val pp_report : Format.formatter -> report -> unit
