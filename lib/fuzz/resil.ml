(* Resilience oracle: install through the fault-injected mirror layer
   and demand that nothing semantic ever depends on the weather.

   For every generated universe and seeded fault plan:

   - with fallback enabled, [Installer.install] over faulty mirrors
     must succeed and produce a store whose {!Binary.Store.fingerprint}
     is byte-identical to the fault-free run's (degrading to source
     builds is allowed; diverging is not), with the root still linking
     whenever the fault-free root linked;
   - with fallback disabled, it must either converge identically or
     fail with a typed {!Binary.Errors.t} leaving the store with the
     empty fingerprint (untouched);
   - with a crash injected at an arbitrary store mutation,
     {!Binary.Store.recover} must resolve the journal completely
     (no staging or journal residue), and resuming the install on the
     recovered store must converge to the fault-free fingerprint. *)

type plan = {
  pl_mirrors : (string * Binary.Mirror.fault_plan) list;
  pl_crash_at : int;  (* reduced mod the run's write count at use *)
  pl_jobs : int;  (* domains for the parallel-schedule scenarios *)
}

let pp_plan fmt p =
  List.iter
    (fun (name, fp) ->
      Format.fprintf fmt "%s: %a@." name Binary.Mirror.pp_fault_plan fp)
    p.pl_mirrors;
  Format.fprintf fmt "crash-at: %d jobs: %d@." p.pl_crash_at p.pl_jobs

let gen_fault_plan rng =
  { Binary.Mirror.fp_seed = Rng.int rng 1_000_000;
    fp_transient_pct = Rng.pick rng [ 0; 10; 30; 60 ];
    fp_corrupt_pct = Rng.pick rng [ 0; 0; 15; 40 ];
    fp_latency_ms = float_of_int (Rng.int rng 20);
    fp_wall = false;
    fp_outage_after = (if Rng.chance rng 30 then Some (Rng.int rng 20) else None);
    fp_outage_len = (if Rng.chance rng 50 then Some (Rng.range rng 1 10) else None) }

let gen_plan rng =
  let mirror_count = Rng.range rng 1 3 in
  { pl_mirrors =
      List.init mirror_count (fun i ->
          (Printf.sprintf "m%d" i, gen_fault_plan rng));
    pl_crash_at = Rng.int rng 10_000;
    pl_jobs = Rng.pick rng [ 2; 2; 3; 4 ] }

type stats = {
  mutable installs_converged : int;
  mutable degraded_converged : int;  (* converged despite taking a fallback *)
  mutable typed_failures_clean : int;  (* no-fallback error, store untouched *)
  mutable crashes_recovered : int;
  mutable parallel_converged : int;  (* jobs-N runs byte-equal to serial *)
  mutable parallel_crashes_recovered : int;
  mutable storms_converged : int;  (* concurrent multi-install unions *)
  mutable entries_quarantined : int;
}

let fresh_stats () =
  { installs_converged = 0;
    degraded_converged = 0;
    typed_failures_clean = 0;
    crashes_recovered = 0;
    parallel_converged = 0;
    parallel_crashes_recovered = 0;
    storms_converged = 0;
    entries_quarantined = 0 }

let add_stats a b =
  a.installs_converged <- a.installs_converged + b.installs_converged;
  a.degraded_converged <- a.degraded_converged + b.degraded_converged;
  a.typed_failures_clean <- a.typed_failures_clean + b.typed_failures_clean;
  a.crashes_recovered <- a.crashes_recovered + b.crashes_recovered;
  a.parallel_converged <- a.parallel_converged + b.parallel_converged;
  a.parallel_crashes_recovered <-
    a.parallel_crashes_recovered + b.parallel_crashes_recovered;
  a.storms_converged <- a.storms_converged + b.storms_converged;
  a.entries_quarantined <- a.entries_quarantined + b.entries_quarantined

let pp_stats fmt s =
  Format.fprintf fmt
    "converged=%d degraded-converged=%d typed-clean=%d crashes-recovered=%d \
     parallel=%d parallel-crashes=%d storms=%d quarantined=%d"
    s.installs_converged s.degraded_converged s.typed_failures_clean
    s.crashes_recovered s.parallel_converged s.parallel_crashes_recovered
    s.storms_converged s.entries_quarantined

let store_root = "/ice"

let empty_fingerprint =
  lazy (Binary.Store.fingerprint (Binary.Store.create ~root:store_root (Binary.Vfs.create ())))

let link_ok (r : Binary.Installer.report) =
  match r.Binary.Installer.link_result with Ok _ -> true | Error _ -> false

let check ?(stats = fresh_stats ()) (u : Gen.t) plan =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (try
     let repo = Gen.to_repo u in
     (* Populate one buildcache from the cache roots, exactly as the
        base oracle does; it is the truth every mirror fronts. *)
     let farm = Binary.Store.create ~root:"/farm" (Binary.Vfs.create ()) in
     let cache = Binary.Buildcache.create ~name:"origin" in
     List.iter
       (fun r ->
         match Core.Concretizer.concretize_spec ~repo r with
         | Error _ -> ()
         | Ok o -> (
           let spec = List.hd o.Core.Concretizer.solution.Core.Decode.specs in
           match Binary.Builder.build_all farm ~repo spec with
           | Error e -> fail "cache build %s: %s" r (Binary.Errors.to_string e)
           | Ok _ -> (
             match Binary.Buildcache.push cache farm spec with
             | Error e -> fail "cache push %s: %s" r (Binary.Errors.to_string e)
             | Ok _ -> ())))
       u.Gen.u_cache_roots;
     let pool = Binary.Buildcache.specs cache in
     let options =
       { Core.Concretizer.default_options with
         Core.Concretizer.reuse = pool;
         splicing = pool <> [] }
     in
     let fresh_mirrors ?(faultless = false) () =
       Binary.Mirror.group
         (List.map
            (fun (name, fp) ->
              Binary.Mirror.create
                ~faults:(if faultless then Binary.Mirror.no_faults else fp)
                ~name cache)
            plan.pl_mirrors)
     in
     let quarantined g =
       List.fold_left
         (fun acc m -> acc + List.length (Binary.Mirror.quarantined m))
         0 (Binary.Mirror.mirrors g)
     in
     let storm_specs = ref [] in
     List.iter
       (fun r ->
         match Core.Concretizer.concretize_spec ~repo ~options r with
         | Error _ -> ()  (* random universes may be UNSAT *)
         | Ok o -> (
           let spec = List.hd o.Core.Concretizer.solution.Core.Decode.specs in
           (* fault-free reference *)
           let ref_store =
             Binary.Store.create ~root:store_root (Binary.Vfs.create ())
           in
           match
             Binary.Installer.install ref_store ~repo ~caches:[ cache ] spec
           with
           | Error e ->
             fail "request %s: fault-free install failed: %s" r
               (Binary.Errors.to_string e)
           | Ok ref_report -> (
             let ref_fp = Binary.Store.fingerprint ref_store in
             storm_specs := spec :: !storm_specs;
             (* 1. faulty mirrors, degradation allowed: must converge *)
             let store =
               Binary.Store.create ~root:store_root (Binary.Vfs.create ())
             in
             let g = fresh_mirrors () in
             let writes_observed = ref 0 in
             (match Binary.Installer.install store ~repo ~mirrors:g spec with
             | Error e ->
               fail "request %s: faulty install failed despite fallback: %s" r
                 (Binary.Errors.to_string e)
             | Ok rep ->
               writes_observed := Binary.Store.write_count store;
               stats.entries_quarantined <-
                 stats.entries_quarantined + quarantined g;
               if Binary.Store.fingerprint store <> ref_fp then
                 fail "request %s: faulty install diverged from fault-free state" r
               else begin
                 stats.installs_converged <- stats.installs_converged + 1;
                 if Binary.Installer.degraded_count rep > 0 then
                   stats.degraded_converged <- stats.degraded_converged + 1
               end;
               if link_ok ref_report && not (link_ok rep) then
                 fail "request %s: faulty install broke the root link" r);
             (* 2. no fallback: converge or fail typed with store untouched *)
             let store2 =
               Binary.Store.create ~root:store_root (Binary.Vfs.create ())
             in
             (match
                Binary.Installer.install store2 ~repo
                  ~mirrors:(fresh_mirrors ()) ~fallback:false spec
              with
             | Ok _ ->
               if Binary.Store.fingerprint store2 <> ref_fp then
                 fail "request %s: no-fallback install diverged" r
             | Error _ ->
               if Binary.Store.fingerprint store2 <> Lazy.force empty_fingerprint
               then
                 fail "request %s: typed failure left the store modified" r
               else
                 stats.typed_failures_clean <- stats.typed_failures_clean + 1);
             (* 3. crash mid-install, recover, resume: must converge *)
             if !writes_observed > 0 then begin
               let crash_at = plan.pl_crash_at mod !writes_observed in
               let vfs = Binary.Vfs.create () in
               let store3 = Binary.Store.create ~root:store_root vfs in
               Binary.Store.set_crash_after store3 (Some crash_at);
               match
                 Binary.Installer.install store3 ~repo ~mirrors:(fresh_mirrors ())
                   spec
               with
               | exception Binary.Store.Crashed _ -> (
                 match Binary.Store.recover ~root:store_root vfs with
                 | exception Binary.Errors.Binary_error e ->
                   fail "request %s: recovery failed: %s" r
                     (Binary.Errors.to_string e)
                 | recovered, _report -> (
                   if
                     Binary.Vfs.list_prefix vfs (store_root ^ "/.journal") <> []
                     || Binary.Vfs.list_prefix vfs (store_root ^ "/.staging") <> []
                   then
                     fail "request %s: recovery left journal/staging residue" r;
                   match
                     Binary.Installer.install recovered ~repo
                       ~mirrors:(fresh_mirrors ~faultless:true ()) spec
                   with
                   | Error e ->
                     fail "request %s: resumed install after crash failed: %s" r
                       (Binary.Errors.to_string e)
                   | Ok _ ->
                     if Binary.Store.fingerprint recovered <> ref_fp then
                       fail
                         "request %s: crash at write %d + recover + resume diverged"
                         r crash_at
                     else stats.crashes_recovered <- stats.crashes_recovered + 1))
               | Ok _ ->
                 (* the fault dice rolled differently and the crash point
                    was never reached: still must have converged *)
                 if Binary.Store.fingerprint store3 <> ref_fp then
                   fail "request %s: uncrashed run diverged" r
               | Error e ->
                 fail "request %s: crash-run install failed typed: %s" r
                   (Binary.Errors.to_string e)
             end;
             (* 4. parallel schedule, faultless: the report must be
                byte-identical to the serial one, not just the store *)
             let store4 =
               Binary.Store.create ~root:store_root (Binary.Vfs.create ())
             in
             (match
                Binary.Installer.install store4 ~repo ~caches:[ cache ]
                  ~jobs:plan.pl_jobs spec
              with
             | Error e ->
               fail "request %s: jobs-%d install failed: %s" r plan.pl_jobs
                 (Binary.Errors.to_string e)
             | Ok rep4 ->
               if Binary.Store.fingerprint store4 <> ref_fp then
                 fail "request %s: jobs-%d install diverged from serial state" r
                   plan.pl_jobs
               else if
                 Binary.Installer.canonical_report rep4
                 <> Binary.Installer.canonical_report ref_report
               then
                 fail "request %s: jobs-%d report differs from serial report" r
                   plan.pl_jobs
               else stats.parallel_converged <- stats.parallel_converged + 1);
             (* 5. crash a parallel faulty run, recover, resume serially:
                the write count under contention depends on the
                interleaving, so the crash point is sampled, not swept —
                the exhaustive per-write sweep lives in the unit tests *)
             if !writes_observed > 0 then begin
               let crash_at =
                 ((plan.pl_crash_at * 7) + 3) mod !writes_observed
               in
               let vfs5 = Binary.Vfs.create () in
               let store5 = Binary.Store.create ~root:store_root vfs5 in
               Binary.Store.set_crash_after store5 (Some crash_at);
               match
                 Binary.Installer.install store5 ~repo
                   ~mirrors:(fresh_mirrors ()) ~jobs:plan.pl_jobs spec
               with
               | exception Binary.Store.Crashed _ -> (
                 match Binary.Store.recover ~root:store_root vfs5 with
                 | exception Binary.Errors.Binary_error e ->
                   fail "request %s: parallel-crash recovery failed: %s" r
                     (Binary.Errors.to_string e)
                 | recovered, _report -> (
                   if
                     Binary.Vfs.list_prefix vfs5 (store_root ^ "/.journal") <> []
                     || Binary.Vfs.list_prefix vfs5 (store_root ^ "/.staging")
                        <> []
                   then
                     fail
                       "request %s: parallel-crash recovery left journal/staging \
                        residue"
                       r;
                   match
                     Binary.Installer.install recovered ~repo
                       ~mirrors:(fresh_mirrors ~faultless:true ()) spec
                   with
                   | Error e ->
                     fail "request %s: resume after parallel crash failed: %s" r
                       (Binary.Errors.to_string e)
                   | Ok _ ->
                     if Binary.Store.fingerprint recovered <> ref_fp then
                       fail
                         "request %s: jobs-%d crash at write %d + recover + \
                          resume diverged"
                         r plan.pl_jobs crash_at
                     else
                       stats.parallel_crashes_recovered <-
                         stats.parallel_crashes_recovered + 1))
               | Ok _ ->
                 if Binary.Store.fingerprint store5 <> ref_fp then
                   fail "request %s: uncrashed jobs-%d run diverged" r
                     plan.pl_jobs
               | Error e ->
                 fail "request %s: parallel crash-run failed typed: %s" r
                   (Binary.Errors.to_string e)
             end)))
       (u.Gen.u_cache_roots @ u.Gen.u_requests);
     (* 6. install storm: several independent installs — including two of
        the same spec, to force cross-install claim contention — race
        onto one shared store through one adaptive mirror fleet. The
        union must equal the serial union, and no claim may leak. *)
     (match List.rev !storm_specs with
      | [] -> ()
      | specs ->
        let take n l =
          List.filteri (fun i _ -> i < n) l
        in
        let distinct = take 3 specs in
        let racers = distinct @ take 1 distinct in
        let ref_union =
          Binary.Store.create ~root:store_root (Binary.Vfs.create ())
        in
        let union_ok =
          List.for_all
            (fun s ->
              match
                Binary.Installer.install ref_union ~repo ~caches:[ cache ] s
              with
              | Ok _ -> true
              | Error e ->
                fail "storm reference install failed: %s"
                  (Binary.Errors.to_string e);
                false)
            distinct
        in
        if union_ok then begin
          let storm_store =
            Binary.Store.create ~root:store_root (Binary.Vfs.create ())
          in
          let fleet =
            Binary.Mirror.fleet ~seed:plan.pl_crash_at
              ~selection:Binary.Mirror.Adaptive ~size:8 cache
          in
          let results =
            List.map
              (fun s ->
                Domain.spawn (fun () ->
                    Binary.Installer.install storm_store ~repo ~mirrors:fleet s))
              racers
            |> List.map Domain.join
          in
          List.iter
            (function
              | Ok _ -> ()
              | Error e ->
                fail "storm install failed despite fallback: %s"
                  (Binary.Errors.to_string e))
            results;
          if Binary.Store.in_flight storm_store <> [] then
            fail "storm left claims in flight";
          if
            Binary.Store.fingerprint storm_store
            <> Binary.Store.fingerprint ref_union
          then fail "storm union diverged from serial union"
          else stats.storms_converged <- stats.storms_converged + 1
        end)
   with
  | Binary.Store.Crashed w ->
    violations := Printf.sprintf "unexpected crash escaped: %s" w :: !violations
  | e ->
    violations := Printf.sprintf "exception: %s" (Printexc.to_string e) :: !violations);
  List.rev !violations

(* ---- harness ------------------------------------------------------- *)

type failure = {
  round : int;
  violations : string list;
  plan : plan;
  shrunk : Gen.t;
  shrunk_violations : string list;
}

type report = {
  seed : int;
  rounds : int;
  stats : stats;
  failures : failure list;
}

let plan_for ~seed ~round =
  gen_plan (Rng.create ((seed * 2_000_003) + round))

let run ?(log = ignore) ~seed ~rounds () =
  let stats = fresh_stats () in
  let failures = ref [] in
  for round = 0 to rounds - 1 do
    let u = Harness.universe ~seed ~round in
    let plan = plan_for ~seed ~round in
    match check ~stats u plan with
    | [] ->
      if round mod 10 = 0 then
        log (Printf.sprintf "resil round %d ok (%s)" round (Gen.summary u))
    | violations ->
      log
        (Printf.sprintf "resil round %d: %d violation(s); shrinking %s" round
           (List.length violations) (Gen.summary u));
      let still_fails u' = check u' plan <> [] in
      let shrunk = Shrink.shrink ~still_fails u in
      failures :=
        { round; violations; plan; shrunk; shrunk_violations = check shrunk plan }
        :: !failures
  done;
  { seed; rounds; stats; failures = List.rev !failures }

let pp_failure fmt f =
  Format.fprintf fmt "round %d: %d violation(s)@." f.round
    (List.length f.violations);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.violations;
  Format.fprintf fmt "fault plan:@.%a" pp_plan f.plan;
  Format.fprintf fmt "shrunk to %s:@." (Gen.summary f.shrunk);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.shrunk_violations;
  Format.fprintf fmt "--- paste-ready reproducer ---@.%s" (Gen.to_ocaml f.shrunk)

let pp_report fmt r =
  Format.fprintf fmt "resil: seed %d, %d rounds, %a@." r.seed r.rounds pp_stats
    r.stats;
  match r.failures with
  | [] -> Format.fprintf fmt "no violations@."
  | fs ->
    Format.fprintf fmt "%d failing round(s)@." (List.length fs);
    List.iter (fun f -> Format.fprintf fmt "%a" pp_failure f) fs
