(* Resilience oracle: install through the fault-injected mirror layer
   and demand that nothing semantic ever depends on the weather.

   For every generated universe and seeded fault plan:

   - with fallback enabled, [Installer.install] over faulty mirrors
     must succeed and produce a store whose {!Binary.Store.fingerprint}
     is byte-identical to the fault-free run's (degrading to source
     builds is allowed; diverging is not), with the root still linking
     whenever the fault-free root linked;
   - with fallback disabled, it must either converge identically or
     fail with a typed {!Binary.Errors.t} leaving the store with the
     empty fingerprint (untouched);
   - with a crash injected at an arbitrary store mutation,
     {!Binary.Store.recover} must resolve the journal completely
     (no staging or journal residue), and resuming the install on the
     recovered store must converge to the fault-free fingerprint. *)

type plan = {
  pl_mirrors : (string * Binary.Mirror.fault_plan) list;
  pl_crash_at : int;  (* reduced mod the run's write count at use *)
}

let pp_plan fmt p =
  List.iter
    (fun (name, fp) ->
      Format.fprintf fmt "%s: %a@." name Binary.Mirror.pp_fault_plan fp)
    p.pl_mirrors;
  Format.fprintf fmt "crash-at: %d@." p.pl_crash_at

let gen_fault_plan rng =
  { Binary.Mirror.fp_seed = Rng.int rng 1_000_000;
    fp_transient_pct = Rng.pick rng [ 0; 10; 30; 60 ];
    fp_corrupt_pct = Rng.pick rng [ 0; 0; 15; 40 ];
    fp_latency_ms = float_of_int (Rng.int rng 20);
    fp_outage_after = (if Rng.chance rng 30 then Some (Rng.int rng 20) else None);
    fp_outage_len = (if Rng.chance rng 50 then Some (Rng.range rng 1 10) else None) }

let gen_plan rng =
  let mirror_count = Rng.range rng 1 3 in
  { pl_mirrors =
      List.init mirror_count (fun i ->
          (Printf.sprintf "m%d" i, gen_fault_plan rng));
    pl_crash_at = Rng.int rng 10_000 }

type stats = {
  mutable installs_converged : int;
  mutable degraded_converged : int;  (* converged despite taking a fallback *)
  mutable typed_failures_clean : int;  (* no-fallback error, store untouched *)
  mutable crashes_recovered : int;
  mutable entries_quarantined : int;
}

let fresh_stats () =
  { installs_converged = 0;
    degraded_converged = 0;
    typed_failures_clean = 0;
    crashes_recovered = 0;
    entries_quarantined = 0 }

let add_stats a b =
  a.installs_converged <- a.installs_converged + b.installs_converged;
  a.degraded_converged <- a.degraded_converged + b.degraded_converged;
  a.typed_failures_clean <- a.typed_failures_clean + b.typed_failures_clean;
  a.crashes_recovered <- a.crashes_recovered + b.crashes_recovered;
  a.entries_quarantined <- a.entries_quarantined + b.entries_quarantined

let pp_stats fmt s =
  Format.fprintf fmt
    "converged=%d degraded-converged=%d typed-clean=%d crashes-recovered=%d quarantined=%d"
    s.installs_converged s.degraded_converged s.typed_failures_clean
    s.crashes_recovered s.entries_quarantined

let store_root = "/ice"

let empty_fingerprint =
  lazy (Binary.Store.fingerprint (Binary.Store.create ~root:store_root (Binary.Vfs.create ())))

let link_ok (r : Binary.Installer.report) =
  match r.Binary.Installer.link_result with Ok _ -> true | Error _ -> false

let check ?(stats = fresh_stats ()) (u : Gen.t) plan =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (try
     let repo = Gen.to_repo u in
     (* Populate one buildcache from the cache roots, exactly as the
        base oracle does; it is the truth every mirror fronts. *)
     let farm = Binary.Store.create ~root:"/farm" (Binary.Vfs.create ()) in
     let cache = Binary.Buildcache.create ~name:"origin" in
     List.iter
       (fun r ->
         match Core.Concretizer.concretize_spec ~repo r with
         | Error _ -> ()
         | Ok o -> (
           let spec = List.hd o.Core.Concretizer.solution.Core.Decode.specs in
           match Binary.Builder.build_all farm ~repo spec with
           | Error e -> fail "cache build %s: %s" r (Binary.Errors.to_string e)
           | Ok _ -> (
             match Binary.Buildcache.push cache farm spec with
             | Error e -> fail "cache push %s: %s" r (Binary.Errors.to_string e)
             | Ok _ -> ())))
       u.Gen.u_cache_roots;
     let pool = Binary.Buildcache.specs cache in
     let options =
       { Core.Concretizer.default_options with
         Core.Concretizer.reuse = pool;
         splicing = pool <> [] }
     in
     let fresh_mirrors ?(faultless = false) () =
       Binary.Mirror.group
         (List.map
            (fun (name, fp) ->
              Binary.Mirror.create
                ~faults:(if faultless then Binary.Mirror.no_faults else fp)
                ~name cache)
            plan.pl_mirrors)
     in
     let quarantined g =
       List.fold_left
         (fun acc m -> acc + List.length (Binary.Mirror.quarantined m))
         0 (Binary.Mirror.mirrors g)
     in
     List.iter
       (fun r ->
         match Core.Concretizer.concretize_spec ~repo ~options r with
         | Error _ -> ()  (* random universes may be UNSAT *)
         | Ok o -> (
           let spec = List.hd o.Core.Concretizer.solution.Core.Decode.specs in
           (* fault-free reference *)
           let ref_store =
             Binary.Store.create ~root:store_root (Binary.Vfs.create ())
           in
           match
             Binary.Installer.install ref_store ~repo ~caches:[ cache ] spec
           with
           | Error e ->
             fail "request %s: fault-free install failed: %s" r
               (Binary.Errors.to_string e)
           | Ok ref_report -> (
             let ref_fp = Binary.Store.fingerprint ref_store in
             (* 1. faulty mirrors, degradation allowed: must converge *)
             let store =
               Binary.Store.create ~root:store_root (Binary.Vfs.create ())
             in
             let g = fresh_mirrors () in
             let writes_observed = ref 0 in
             (match Binary.Installer.install store ~repo ~mirrors:g spec with
             | Error e ->
               fail "request %s: faulty install failed despite fallback: %s" r
                 (Binary.Errors.to_string e)
             | Ok rep ->
               writes_observed := Binary.Store.write_count store;
               stats.entries_quarantined <-
                 stats.entries_quarantined + quarantined g;
               if Binary.Store.fingerprint store <> ref_fp then
                 fail "request %s: faulty install diverged from fault-free state" r
               else begin
                 stats.installs_converged <- stats.installs_converged + 1;
                 if Binary.Installer.degraded_count rep > 0 then
                   stats.degraded_converged <- stats.degraded_converged + 1
               end;
               if link_ok ref_report && not (link_ok rep) then
                 fail "request %s: faulty install broke the root link" r);
             (* 2. no fallback: converge or fail typed with store untouched *)
             let store2 =
               Binary.Store.create ~root:store_root (Binary.Vfs.create ())
             in
             (match
                Binary.Installer.install store2 ~repo
                  ~mirrors:(fresh_mirrors ()) ~fallback:false spec
              with
             | Ok _ ->
               if Binary.Store.fingerprint store2 <> ref_fp then
                 fail "request %s: no-fallback install diverged" r
             | Error _ ->
               if Binary.Store.fingerprint store2 <> Lazy.force empty_fingerprint
               then
                 fail "request %s: typed failure left the store modified" r
               else
                 stats.typed_failures_clean <- stats.typed_failures_clean + 1);
             (* 3. crash mid-install, recover, resume: must converge *)
             if !writes_observed > 0 then begin
               let crash_at = plan.pl_crash_at mod !writes_observed in
               let vfs = Binary.Vfs.create () in
               let store3 = Binary.Store.create ~root:store_root vfs in
               Binary.Store.set_crash_after store3 (Some crash_at);
               match
                 Binary.Installer.install store3 ~repo ~mirrors:(fresh_mirrors ())
                   spec
               with
               | exception Binary.Store.Crashed _ -> (
                 match Binary.Store.recover ~root:store_root vfs with
                 | exception Binary.Errors.Binary_error e ->
                   fail "request %s: recovery failed: %s" r
                     (Binary.Errors.to_string e)
                 | recovered, _report -> (
                   if
                     Binary.Vfs.list_prefix vfs (store_root ^ "/.journal") <> []
                     || Binary.Vfs.list_prefix vfs (store_root ^ "/.staging") <> []
                   then
                     fail "request %s: recovery left journal/staging residue" r;
                   match
                     Binary.Installer.install recovered ~repo
                       ~mirrors:(fresh_mirrors ~faultless:true ()) spec
                   with
                   | Error e ->
                     fail "request %s: resumed install after crash failed: %s" r
                       (Binary.Errors.to_string e)
                   | Ok _ ->
                     if Binary.Store.fingerprint recovered <> ref_fp then
                       fail
                         "request %s: crash at write %d + recover + resume diverged"
                         r crash_at
                     else stats.crashes_recovered <- stats.crashes_recovered + 1))
               | Ok _ ->
                 (* the fault dice rolled differently and the crash point
                    was never reached: still must have converged *)
                 if Binary.Store.fingerprint store3 <> ref_fp then
                   fail "request %s: uncrashed run diverged" r
               | Error e ->
                 fail "request %s: crash-run install failed typed: %s" r
                   (Binary.Errors.to_string e)
             end)))
       (u.Gen.u_cache_roots @ u.Gen.u_requests)
   with
  | Binary.Store.Crashed w ->
    violations := Printf.sprintf "unexpected crash escaped: %s" w :: !violations
  | e ->
    violations := Printf.sprintf "exception: %s" (Printexc.to_string e) :: !violations);
  List.rev !violations

(* ---- harness ------------------------------------------------------- *)

type failure = {
  round : int;
  violations : string list;
  plan : plan;
  shrunk : Gen.t;
  shrunk_violations : string list;
}

type report = {
  seed : int;
  rounds : int;
  stats : stats;
  failures : failure list;
}

let plan_for ~seed ~round =
  gen_plan (Rng.create ((seed * 2_000_003) + round))

let run ?(log = ignore) ~seed ~rounds () =
  let stats = fresh_stats () in
  let failures = ref [] in
  for round = 0 to rounds - 1 do
    let u = Harness.universe ~seed ~round in
    let plan = plan_for ~seed ~round in
    match check ~stats u plan with
    | [] ->
      if round mod 10 = 0 then
        log (Printf.sprintf "resil round %d ok (%s)" round (Gen.summary u))
    | violations ->
      log
        (Printf.sprintf "resil round %d: %d violation(s); shrinking %s" round
           (List.length violations) (Gen.summary u));
      let still_fails u' = check u' plan <> [] in
      let shrunk = Shrink.shrink ~still_fails u in
      failures :=
        { round; violations; plan; shrunk; shrunk_violations = check shrunk plan }
        :: !failures
  done;
  { seed; rounds; stats; failures = List.rev !failures }

let pp_failure fmt f =
  Format.fprintf fmt "round %d: %d violation(s)@." f.round
    (List.length f.violations);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.violations;
  Format.fprintf fmt "fault plan:@.%a" pp_plan f.plan;
  Format.fprintf fmt "shrunk to %s:@." (Gen.summary f.shrunk);
  List.iter (fun v -> Format.fprintf fmt "  - %s@." v) f.shrunk_violations;
  Format.fprintf fmt "--- paste-ready reproducer ---@.%s" (Gen.to_ocaml f.shrunk)

let pp_report fmt r =
  Format.fprintf fmt "resil: seed %d, %d rounds, %a@." r.seed r.rounds pp_stats
    r.stats;
  match r.failures with
  | [] -> Format.fprintf fmt "no violations@."
  | fs ->
    Format.fprintf fmt "%d failing round(s)@." (List.length fs);
    List.iter (fun f -> Format.fprintf fmt "%a" pp_failure f) fs
