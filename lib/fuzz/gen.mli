(** Parameterized random package universes.

    A universe is a first-class {e description} — plain data, not a
    [Pkg.Repo.t] — so {!Shrink} can delete pieces of it and {!Harness}
    can print any failing instance as a paste-ready regression test.

    Generated shapes cover the concretizer's interesting axes: layered
    dependency DAGs, conditional and build-only dependencies, version
    pins, an optional virtual with two same-ABI-family providers (one
    declaring [can_splice] for the other), conflicts — including
    "poisoned" packages whose every version conflicts, the seed of
    certifiable UNSATs — and requests that are sometimes impossible by
    construction. *)

type udep = {
  ud_target : string;  (** dependency spec text, e.g. ["p2@2.0"] or ["vmpi"] *)
  ud_when : string option;
  ud_build_only : bool;
}

type upkg = {
  up_name : string;
  up_versions : string list;  (** newest-preferred first *)
  up_variant : bool option;  (** boolean variant ["fast"] with this default *)
  up_family : string option;
  up_provides : string option;
  up_deps : udep list;
  up_conflicts : (string * string option) list;  (** (forbidden self, when) *)
  up_splices : (string * string) list;  (** (target spec, when) *)
}

type t = {
  u_pkgs : upkg list;
  u_cache_roots : string list;
      (** requests concretized and built into the buildcache *)
  u_requests : string list;
}

val virtual_name : string

val stray_name : string
(** A package nothing references: its cached spec is the metamorphic
    no-op entry that must never change a solution. *)

val core_names : t -> string list

val generate : Rng.t -> t

val to_repo : t -> Pkg.Repo.t
(** Compile the description through the ordinary packaging DSL. *)

val to_ocaml : t -> string
(** Render as paste-ready OCaml (repo + requests + cache roots). *)

val size : t -> int

val summary : t -> string
