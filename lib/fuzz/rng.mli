(** Deterministic splitmix64 PRNG.

    The harness never touches [Random]: a (seed, round) pair fully
    determines a universe, so any failure is reproducible from two
    integers in its report. *)

type t

val create : int -> t

val next : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> int -> bool
(** [chance t pct] is true with probability [pct]/100. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val fork : t -> string -> t
(** An independent stream derived from this one and a tag. *)
