(* Oracle harnesses: everything we can demand of the stack on a random
   universe without trusting the solver.

   - every SAT answer must pass [Core.Verify.check_solution] (an
     independent reimplementation of the semantics);
   - every UNSAT answer must carry a DRUP certificate accepted by the
     independent {!Drup} checker;
   - on small instances, UNSAT answers are cross-checked against a
     brute-force reference enumerator (completeness);
   - [Old] and [Hash_attr] encodings must agree on optimum costs and
     the root DAG hash;
   - metamorphic: adding an irrelevant cached spec must not change the
     solution; a solver-chosen splice of a declared-compatible package
     must install by rewiring and link cleanly under {!Abi}. *)

type stats = {
  mutable sat_verified : int;
  mutable unsat_certified : int;
  mutable brute_confirmed : int;
  mutable encodings_agreed : int;
  mutable metamorphic_ok : int;
  mutable splices_linked : int;
}

let fresh_stats () =
  { sat_verified = 0;
    unsat_certified = 0;
    brute_confirmed = 0;
    encodings_agreed = 0;
    metamorphic_ok = 0;
    splices_linked = 0 }

let add_stats a b =
  a.sat_verified <- a.sat_verified + b.sat_verified;
  a.unsat_certified <- a.unsat_certified + b.unsat_certified;
  a.brute_confirmed <- a.brute_confirmed + b.brute_confirmed;
  a.encodings_agreed <- a.encodings_agreed + b.encodings_agreed;
  a.metamorphic_ok <- a.metamorphic_ok + b.metamorphic_ok;
  a.splices_linked <- a.splices_linked + b.splices_linked

let pp_stats fmt s =
  Format.fprintf fmt
    "sat-verified=%d unsat-certified=%d brute-confirmed=%d encodings-agreed=%d metamorphic=%d splices-linked=%d"
    s.sat_verified s.unsat_certified s.brute_confirmed s.encodings_agreed
    s.metamorphic_ok s.splices_linked

let is_unsat_message m =
  String.length m >= 5 && String.sub m 0 5 = "UNSAT"

(* ---- brute-force reference enumerator ---------------------------- *)

(* Enumerate every candidate concrete DAG for [request]: a version per
   package, a value per declared variant, a provider per virtual; the
   dependency closure from the root then follows deterministically from
   the package directives. A candidate counts iff the independent
   validator accepts it. Used only when the choice space is small. *)

exception Found

let brute_has_solution ~repo (u : Gen.t) request_text =
  let pkgs =
    List.filter (fun (p : Gen.upkg) -> p.Gen.up_name <> Gen.stray_name) u.Gen.u_pkgs
  in
  let providers =
    List.filter (fun (p : Gen.upkg) -> p.Gen.up_provides <> None) pkgs
  in
  let dims =
    List.concat_map
      (fun (p : Gen.upkg) ->
        List.length p.Gen.up_versions
        :: (match p.Gen.up_variant with Some _ -> [ 2 ] | None -> []))
      pkgs
    @ (if providers = [] then [] else [ List.length providers ])
  in
  let space = List.fold_left ( * ) 1 dims in
  if space > 4096 then None
  else begin
    let request = Spec.Parser.parse request_text in
    let root_name = request.Spec.Abstract.root.Spec.Abstract.name in
    let try_candidate choices =
      (* Decode the choice vector back into per-package picks. *)
      let rest = ref choices in
      let take () =
        match !rest with
        | c :: tl ->
          rest := tl;
          c
        | [] -> assert false
      in
      let picks =
        List.map
          (fun (p : Gen.upkg) ->
            let v = List.nth p.Gen.up_versions (take ()) in
            let fast =
              match p.Gen.up_variant with
              | Some _ -> Some (take () = 0)
              | None -> None
            in
            (p, v, fast))
          pkgs
      in
      let provider =
        if providers = [] then None
        else
          Some (List.nth providers (take ())).Gen.up_name
      in
      let node_of (p : Gen.upkg) v fast =
        { Spec.Concrete.name = p.Gen.up_name;
          version = Vers.Version.of_string v;
          variants =
            (match fast with
            | Some b -> Spec.Types.Smap.singleton "fast" (Spec.Types.Bool b)
            | None -> Spec.Types.Smap.empty);
          os = "linux";
          target = "x86_64";
          build_hash = None }
      in
      let pick_of name =
        List.find_opt (fun ((p : Gen.upkg), _, _) -> p.Gen.up_name = name) picks
      in
      (* Dependency closure from the root under this assignment. *)
      let nodes = Hashtbl.create 8 in
      let edges = ref [] in
      let rec visit name =
        if not (Hashtbl.mem nodes name) then
          match pick_of name with
          | None -> ()
          | Some (p, v, fast) ->
            let node = node_of p v fast in
            Hashtbl.replace nodes name node;
            List.iter
              (fun (d : Gen.udep) ->
                let applies =
                  match d.Gen.ud_when with
                  | None -> true
                  | Some w ->
                    Spec.Concrete.node_satisfies node (Spec.Parser.parse_node w)
                in
                if applies then begin
                  let target_name =
                    (Spec.Parser.parse d.Gen.ud_target).Spec.Abstract.root
                      .Spec.Abstract.name
                  in
                  let target_name =
                    if target_name = Gen.virtual_name then
                      match provider with Some pr -> pr | None -> target_name
                    else target_name
                  in
                  let dt =
                    if d.Gen.ud_build_only then Spec.Types.dt_build
                    else Spec.Types.dt_both
                  in
                  edges := (name, target_name, dt) :: !edges;
                  visit target_name
                end)
              p.Gen.up_deps
      in
      visit root_name;
      match Hashtbl.length nodes with
      | 0 -> ()
      | _ -> (
        let node_list = Hashtbl.fold (fun _ n acc -> n :: acc) nodes [] in
        (* Drop edges into packages that never resolved (e.g. a virtual
           with no provider picked): Concrete.create would reject them,
           and the validator will flag the missing dependency anyway. *)
        let edges =
          List.filter (fun (_, d, _) -> Hashtbl.mem nodes d) !edges
        in
        match
          Spec.Concrete.create ~root:root_name ~nodes:node_list ~edges ()
        with
        | exception Invalid_argument _ -> ()
        | spec ->
          let violations =
            Core.Verify.check_solution ~repo ~request ~host_os:"linux"
              ~host_target:"x86_64" spec
          in
          if violations = [] then raise Found)
    in
    let rec enumerate acc = function
      | [] -> try_candidate (List.rev acc)
      | d :: rest ->
        for c = 0 to d - 1 do
          enumerate (c :: acc) rest
        done
    in
    match enumerate [] dims with
    | () -> Some false
    | exception Found -> Some true
  end

(* ---- the oracle proper ------------------------------------------- *)

let options ?(encoding = Core.Encode.Hash_attr) ?(splicing = false)
    ?(reuse = []) ?(certify = false) () =
  { Core.Concretizer.default_options with
    Core.Concretizer.encoding;
    splicing;
    reuse;
    certify }

let concretize ~repo ~options request_text =
  Core.Concretizer.concretize_v ~repo ~options
    [ Core.Encode.request_of_string request_text ]

let root_spec (o : Core.Concretizer.outcome) =
  List.hd o.Core.Concretizer.solution.Core.Decode.specs

let costs (o : Core.Concretizer.outcome) = o.Core.Concretizer.stats.Core.Concretizer.costs

let check ?(stats = fresh_stats ()) (u : Gen.t) =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (try
     let repo = Gen.to_repo u in
     (match Pkg.Repo.validate repo with
     | Ok () -> ()
     | Error es -> fail "generator bug: invalid repo: %s" (String.concat "; " es));
     (* Populate a buildcache from the cache roots (skipping any that
        fail to concretize — random universes may be UNSAT). *)
     let vfs = Binary.Vfs.create () in
     let farm = Binary.Store.create ~root:"/farm" vfs in
     let cache = Binary.Buildcache.create ~name:"fuzz" in
     List.iter
       (fun r ->
         match concretize ~repo ~options:(options ()) r with
         | Error _ -> ()
         | Ok o -> (
           let spec = root_spec o in
           match Binary.Builder.build_all farm ~repo spec with
           | Error e ->
             fail "cache build %s: %s" r (Binary.Errors.to_string e)
           | Ok _ -> (
             match Binary.Buildcache.push cache farm spec with
             | Error e -> fail "cache push %s: %s" r (Binary.Errors.to_string e)
             | Ok _ -> ())))
       u.Gen.u_cache_roots;
     let pool = Binary.Buildcache.specs cache in
     let stray_spec =
       match concretize ~repo ~options:(options ()) Gen.stray_name with
       | Ok o -> Some (root_spec o)
       | Error _ -> None
     in
     List.iter
       (fun r ->
         (* 1. plain concretization, certified *)
         (match concretize ~repo ~options:(options ~certify:true ()) r with
         | Ok o ->
           let spec = root_spec o in
           let vs =
             Core.Verify.check_solution ~repo ~request:(Spec.Parser.parse r) spec
           in
           if vs <> [] then
             fail "request %s: solver output fails validation: %s" r
               (String.concat "; "
                  (List.map
                     (Format.asprintf "%a" Core.Verify.pp_violation)
                     vs))
           else stats.sat_verified <- stats.sat_verified + 1;
           (* Self-check of the reference enumerator: if the solver has
              a (validated) solution the brute-force search must find
              one too, or its UNSAT cross-checks are worthless. *)
           (match brute_has_solution ~repo u r with
           | Some false ->
             fail "request %s: brute-force reference missed the solver's valid solution" r
           | Some true -> stats.brute_confirmed <- stats.brute_confirmed + 1
           | None -> ())
         | Error f when is_unsat_message f.Core.Concretizer.f_message -> (
           (match f.Core.Concretizer.f_proof with
           | None -> fail "request %s: UNSAT without a proof" r
           | Some steps -> (
             match Drup.check steps with
             | Ok () -> stats.unsat_certified <- stats.unsat_certified + 1
             | Error e -> fail "request %s: UNSAT proof rejected: %s" r e));
           match brute_has_solution ~repo u r with
           | Some true ->
             fail "request %s: solver says UNSAT but brute force found a valid solution" r
           | Some false -> stats.brute_confirmed <- stats.brute_confirmed + 1
           | None -> ())
         | Error f -> fail "request %s: %s" r f.Core.Concretizer.f_message);
         (* 2. encoding agreement over the populated pool *)
         (let old_r =
            concretize ~repo
              ~options:(options ~encoding:Core.Encode.Old ~reuse:pool ())
              r
          in
          let new_r = concretize ~repo ~options:(options ~reuse:pool ()) r in
          match (old_r, new_r) with
          | Ok a, Ok b ->
            if costs a <> costs b then
              fail "request %s: encodings disagree on costs (old %s, hash_attr %s)"
                r
                (String.concat ","
                   (List.map (fun (p, c) -> Printf.sprintf "%d@%d" c p) (costs a)))
                (String.concat ","
                   (List.map (fun (p, c) -> Printf.sprintf "%d@%d" c p) (costs b)))
            else if
              Spec.Concrete.dag_hash (root_spec a)
              <> Spec.Concrete.dag_hash (root_spec b)
            then fail "request %s: encodings disagree on the root DAG" r
            else stats.encodings_agreed <- stats.encodings_agreed + 1
          | Error a, Error b
            when is_unsat_message a.Core.Concretizer.f_message
                 && is_unsat_message b.Core.Concretizer.f_message ->
            stats.encodings_agreed <- stats.encodings_agreed + 1
          | Ok _, Error f ->
            fail "request %s: old encoding SAT but hash_attr failed: %s" r
              f.Core.Concretizer.f_message
          | Error f, Ok _ ->
            fail "request %s: hash_attr SAT but old encoding failed: %s" r
              f.Core.Concretizer.f_message
          | Error a, Error b ->
            fail "request %s: encodings fail differently: %s / %s" r
              a.Core.Concretizer.f_message b.Core.Concretizer.f_message);
         (* 3. metamorphic: an irrelevant cached spec changes nothing *)
         (match stray_spec with
         | None -> ()
         | Some stray -> (
           let base = concretize ~repo ~options:(options ~reuse:pool ()) r in
           let extended =
             concretize ~repo ~options:(options ~reuse:(pool @ [ stray ]) ()) r
           in
           match (base, extended) with
           | Ok a, Ok b ->
             if
               Spec.Concrete.dag_hash (root_spec a)
               <> Spec.Concrete.dag_hash (root_spec b)
               || costs a <> costs b
             then
               fail "request %s: an irrelevant cached spec changed the solution" r
             else stats.metamorphic_ok <- stats.metamorphic_ok + 1
           | Error a, Error b
             when is_unsat_message a.Core.Concretizer.f_message
                  && is_unsat_message b.Core.Concretizer.f_message ->
             stats.metamorphic_ok <- stats.metamorphic_ok + 1
           | _ ->
             fail "request %s: an irrelevant cached spec flipped SAT/UNSAT" r));
         (* 4. a solver-chosen splice must rewire and link *)
         if pool <> [] then
           match
             concretize ~repo ~options:(options ~reuse:pool ~splicing:true ()) r
           with
           | Error _ -> ()
           | Ok o ->
             let sol = o.Core.Concretizer.solution in
             if sol.Core.Decode.splices <> [] then begin
               let spec = root_spec o in
               let vs =
                 Core.Verify.check_solution ~repo
                   ~request:(Spec.Parser.parse r) spec
               in
               if vs <> [] then
                 fail "request %s: spliced solution fails validation: %s" r
                   (String.concat "; "
                      (List.map
                         (Format.asprintf "%a" Core.Verify.pp_violation)
                         vs));
               let cvfs = Binary.Vfs.create () in
               let cluster = Binary.Store.create ~root:"/cluster" cvfs in
               match
                 Binary.Installer.install cluster ~repo ~caches:[ cache ] spec
               with
               | Error e ->
                 fail "request %s: spliced install failed: %s" r
                   (Binary.Errors.to_string e)
               | Ok report -> (
                 match report.Binary.Installer.link_result with
                 | Ok _ -> stats.splices_linked <- stats.splices_linked + 1
                 | Error es ->
                   fail
                     "request %s: declared-compatible splice fails to link (%d errors)"
                     r (List.length es))
             end)
       u.Gen.u_requests
   with e ->
     violations :=
       Printf.sprintf "exception: %s" (Printexc.to_string e) :: !violations);
  List.rev !violations
