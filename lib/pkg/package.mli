(** Package definitions: the packaging DSL of §3.2 plus the
    [can_splice] directive of §5.2.

    A package declares a combinatorial configuration space through
    directives, most of which accept a [when] constraint (an abstract
    spec over the declaring package) gating their applicability:

    {[
      let example =
        Package.(
          make "example"
          |> version "1.1.0"
          |> version "1.0.0"
          |> variant "bzip" ~default:(Bool true)
          |> depends_on "bzip2" ~when_:"+bzip"
          |> depends_on "zlib@1.2" ~when_:"@1.0.0"
          |> depends_on "zlib@1.3" ~when_:"@1.1.0"
          |> depends_on "mpi"
          |> can_splice "example@1.0.0" ~when_:"@1.1.0"
          |> can_splice "example-ng@2.3.2+compat" ~when_:"@1.1.0+bzip")
    ]}

    Versions are declared newest-preferred-first (like listing order in
    Spack's [package.py]). [depends_on] may name a virtual package
    (e.g. [mpi]); some other package must [provides] it. *)

open Spec.Types

type variant_decl = {
  v_name : string;
  v_default : variant_value;
  v_values : string list option;
      (** allowed string values; [None] for boolean variants *)
  v_when : Spec.Abstract.node option;
}

type dep_decl = {
  d_spec : Spec.Abstract.t;  (** constraints on the dependency *)
  d_types : deptypes;
  d_when : Spec.Abstract.node option;
}

type provide_decl = {
  p_virtual : string;
  p_when : Spec.Abstract.node option;
}

type conflict_decl = {
  c_spec : Spec.Abstract.node;  (** forbidden configurations of self *)
  c_when : Spec.Abstract.node option;
}

type splice_decl = {
  s_target : Spec.Abstract.t;
      (** what this package can replace (§5.2: packages declare which
          specs they {e can replace}, not which can replace them) *)
  s_when : Spec.Abstract.node;  (** condition on the replacing package *)
}

type t = {
  name : string;
  versions : Vers.Version.t list;  (** declaration order = preference *)
  variants : variant_decl list;
  dependencies : dep_decl list;
  provides : provide_decl list;
  conflicts : conflict_decl list;
  splices : splice_decl list;
  abi_family : string;
      (** packages sharing a family synthesize compatible binary
          interfaces (see {!Abi}); defaults to the package name *)
}

val make : ?abi_family:string -> string -> t

val version : string -> t -> t

val variant :
  ?default:variant_value -> ?values:string list -> ?when_:string -> string -> t -> t
(** Boolean by default ([default] = [Bool false]). *)

val depends_on : ?deptypes:deptypes -> ?when_:string -> string -> t -> t
(** The dependency is given in spec syntax (["zlib@1.2"]); default
    deptypes are build+link like Spack's. *)

val provides : ?when_:string -> string -> t -> t

val conflicts : ?when_:string -> string -> t -> t

val can_splice : string -> when_:string -> t -> t
(** [can_splice target ~when_]: configurations of this package
    satisfying [when_] may be spliced in for installed specs satisfying
    [target]. Both use full spec syntax. *)

val has_version : t -> Vers.Version.t -> bool

val version_weight : t -> Vers.Version.t -> int option
(** Position in the preference order (0 = most preferred). *)

val pp : Format.formatter -> t -> unit
