open Spec.Types

type variant_decl = {
  v_name : string;
  v_default : variant_value;
  v_values : string list option;
  v_when : Spec.Abstract.node option;
}

type dep_decl = {
  d_spec : Spec.Abstract.t;
  d_types : deptypes;
  d_when : Spec.Abstract.node option;
}

type provide_decl = {
  p_virtual : string;
  p_when : Spec.Abstract.node option;
}

type conflict_decl = {
  c_spec : Spec.Abstract.node;
  c_when : Spec.Abstract.node option;
}

type splice_decl = {
  s_target : Spec.Abstract.t;
  s_when : Spec.Abstract.node;
}

type t = {
  name : string;
  versions : Vers.Version.t list;
  variants : variant_decl list;
  dependencies : dep_decl list;
  provides : provide_decl list;
  conflicts : conflict_decl list;
  splices : splice_decl list;
  abi_family : string;
}

let make ?abi_family name =
  { name;
    versions = [];
    variants = [];
    dependencies = [];
    provides = [];
    conflicts = [];
    splices = [];
    abi_family = (match abi_family with Some f -> f | None -> name) }

(* [when] constraints are anonymous node specs over the declaring
   package ("@1.0.0", "+bzip", "@1.1.0+bzip"). *)
let parse_when pkg = function
  | None -> None
  | Some s ->
    let n = Spec.Parser.parse_node s in
    if n.Spec.Abstract.name <> "" && n.Spec.Abstract.name <> pkg then
      invalid_arg
        (Printf.sprintf "package %s: when-constraint %S names a different package" pkg s);
    Some { n with Spec.Abstract.name = pkg }

let version v t = { t with versions = t.versions @ [ Vers.Version.of_string v ] }

let variant ?(default = Bool false) ?values ?when_ name t =
  { t with
    variants =
      t.variants
      @ [ { v_name = name;
            v_default = default;
            v_values = values;
            v_when = parse_when t.name when_ } ] }

let depends_on ?(deptypes = dt_both) ?when_ spec t =
  { t with
    dependencies =
      t.dependencies
      @ [ { d_spec = Spec.Parser.parse spec;
            d_types = deptypes;
            d_when = parse_when t.name when_ } ] }

let provides ?when_ virtual_name t =
  { t with
    provides =
      t.provides @ [ { p_virtual = virtual_name; p_when = parse_when t.name when_ } ] }

let conflicts ?when_ spec t =
  { t with
    conflicts =
      t.conflicts
      @ [ { c_spec = Spec.Parser.parse_node spec; c_when = parse_when t.name when_ } ] }

let can_splice target ~when_ t =
  let w = Spec.Parser.parse_node when_ in
  let w =
    if w.Spec.Abstract.name <> "" && w.Spec.Abstract.name <> t.name then
      invalid_arg
        (Printf.sprintf "package %s: can_splice when-constraint names %s" t.name
           w.Spec.Abstract.name)
    else { w with Spec.Abstract.name = t.name }
  in
  { t with splices = t.splices @ [ { s_target = Spec.Parser.parse target; s_when = w } ] }

let has_version t v = List.exists (Vers.Version.equal v) t.versions

let version_weight t v =
  let rec go i = function
    | [] -> None
    | x :: rest -> if Vers.Version.equal x v then Some i else go (i + 1) rest
  in
  go 0 t.versions

let pp fmt t =
  Format.fprintf fmt "package %s@." t.name;
  List.iter (fun v -> Format.fprintf fmt "  version %a@." Vers.Version.pp v) t.versions;
  List.iter
    (fun v ->
      Format.fprintf fmt "  variant %s default=%s@." v.v_name
        (variant_value_to_string v.v_default))
    t.variants;
  List.iter
    (fun d ->
      Format.fprintf fmt "  depends_on %a%s@." Spec.Abstract.pp d.d_spec
        (match d.d_when with
        | None -> ""
        | Some w -> Format.asprintf " when %a" Spec.Abstract.pp_node w))
    t.dependencies;
  List.iter (fun p -> Format.fprintf fmt "  provides %s@." p.p_virtual) t.provides;
  List.iter
    (fun s ->
      Format.fprintf fmt "  can_splice %a when %a@." Spec.Abstract.pp s.s_target
        Spec.Abstract.pp_node s.s_when)
    t.splices
