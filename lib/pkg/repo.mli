(** A package repository: the universe of package definitions the
    concretizer reasons over (Spack's builtin repo analogue). *)

type t

val of_packages : Package.t list -> t
(** @raise Invalid_argument on duplicate package names. *)

val find : t -> string -> Package.t option

val get : t -> string -> Package.t
(** @raise Not_found *)

val mem : t -> string -> bool

val packages : t -> Package.t list
(** Sorted by name. *)

val is_virtual : t -> string -> bool
(** A name is virtual when some package provides it and none defines
    it. *)

val providers : t -> string -> Package.t list
(** Packages with a [provides] directive for the given virtual. *)

val add : t -> Package.t -> t
(** Add or replace a definition. *)

val validate : t -> (unit, string list) result
(** Sanity checks: dependencies and splice targets must name known
    packages or virtuals; virtuals must have at least one provider;
    every package needs at least one version. *)
