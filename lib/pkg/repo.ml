module Smap = Map.Make (String)

type t = { packages : Package.t Smap.t }

let of_packages pkgs =
  let packages =
    List.fold_left
      (fun m (p : Package.t) ->
        if Smap.mem p.Package.name m then
          invalid_arg ("Repo.of_packages: duplicate package " ^ p.Package.name)
        else Smap.add p.Package.name p m)
      Smap.empty pkgs
  in
  { packages }

let find t name = Smap.find_opt name t.packages

let get t name =
  match find t name with Some p -> p | None -> raise Not_found

let mem t name = Smap.mem name t.packages

let packages t = Smap.bindings t.packages |> List.map snd

let providers t virtual_name =
  packages t
  |> List.filter (fun (p : Package.t) ->
         List.exists
           (fun (pr : Package.provide_decl) ->
             String.equal pr.Package.p_virtual virtual_name)
           p.Package.provides)

let is_virtual t name = (not (mem t name)) && providers t name <> []

let add t p = { packages = Smap.add p.Package.name p t.packages }

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let known name = mem t name || is_virtual t name in
  List.iter
    (fun (p : Package.t) ->
      if p.Package.versions = [] then err "package %s has no versions" p.Package.name;
      List.iter
        (fun (d : Package.dep_decl) ->
          let dep_name = d.Package.d_spec.Spec.Abstract.root.Spec.Abstract.name in
          if not (known dep_name) then
            err "package %s depends on unknown package %s" p.Package.name dep_name)
        p.Package.dependencies;
      List.iter
        (fun (s : Package.splice_decl) ->
          let target = s.Package.s_target.Spec.Abstract.root.Spec.Abstract.name in
          if not (known target) then
            err "package %s can_splice unknown package %s" p.Package.name target)
        p.Package.splices)
    (packages t);
  match !errors with [] -> Ok () | es -> Error (List.rev es)
