type layout = {
  type_name : string;
  opaque : bool;
  size : int;
  repr : string;
}

type symbol = {
  mangled : string;
  sig_digest : string;
}

type surface = {
  symbols : symbol list;
  layouts : layout list;
}

(* Itanium-style mangling: _Z<len><name>... over a synthetic C++-ish
   name. Only needs to be deterministic and collision-free. *)
let mangle ~family name =
  Printf.sprintf "_Z%d%s%d%sEv" (String.length family) family (String.length name) name

let digest_of ~family ~interface_version name =
  Chash.short ~len:12 (Chash.hash_string (family ^ "|" ^ interface_version ^ "|" ^ name))

(* The synthetic interface: a fixed roster of entry points per family
   (names shared across families so surfaces collide on purpose when
   families differ only in digests), plus a couple of exported types,
   one opaque. Mirrors the MPI example: every family exports comm_t
   (opaque — repr depends on the family) and status_t (concrete). *)
let base_entry_points =
  [ "init"; "finalize"; "send"; "recv"; "barrier"; "bcast"; "reduce";
    "gather"; "scatter"; "wait"; "test"; "comm_rank"; "comm_size";
    "comm_split"; "comm_dup" ]

let synthesize ~family ~interface_version ?(extra_symbols = 0) () =
  let symbols =
    List.map
      (fun name ->
        { mangled = mangle ~family:"iface" name;
          sig_digest = digest_of ~family ~interface_version name })
      base_entry_points
    @ List.init extra_symbols (fun i ->
          let name = Printf.sprintf "ext%d" i in
          { mangled = mangle ~family name;
            sig_digest = digest_of ~family ~interface_version name })
  in
  let layouts =
    [ { type_name = "comm_t";
        opaque = true;
        (* Opaque representation is the family's private choice. *)
        size = 4 + (Hashtbl.hash family mod 3 * 4);
        repr = Chash.short ~len:8 (Chash.hash_string ("repr|" ^ family)) };
      { type_name = "status_t"; opaque = false; size = 24; repr = "c-struct" } ]
  in
  { symbols = List.sort (fun a b -> String.compare a.mangled b.mangled) symbols;
    layouts = List.sort (fun a b -> String.compare a.type_name b.type_name) layouts }

type incompatibility =
  | Missing_symbol of string
  | Signature_mismatch of string
  | Layout_mismatch of string

let check ~provider ~required =
  let problems = ref [] in
  List.iter
    (fun need ->
      match
        List.find_opt (fun s -> String.equal s.mangled need.mangled) provider.symbols
      with
      | None -> problems := Missing_symbol need.mangled :: !problems
      | Some got ->
        if not (String.equal got.sig_digest need.sig_digest) then
          problems := Signature_mismatch need.mangled :: !problems)
    required.symbols;
  List.iter
    (fun need ->
      match
        List.find_opt
          (fun l -> String.equal l.type_name need.type_name)
          provider.layouts
      with
      | None -> problems := Layout_mismatch need.type_name :: !problems
      | Some got ->
        if got.size <> need.size || not (String.equal got.repr need.repr) then
          problems := Layout_mismatch need.type_name :: !problems)
    required.layouts;
  List.rev !problems

let compatible ~provider ~required = check ~provider ~required = []

let required_of surface ~fraction =
  let keep s =
    let h = Hashtbl.hash s.mangled land 0xFFFF in
    float_of_int h /. 65536.0 < fraction
  in
  let symbols =
    match List.filter keep surface.symbols with
    | [] -> (match surface.symbols with [] -> [] | s :: _ -> [ s ])
    | l -> l
  in
  { surface with symbols }

let pp_incompatibility fmt = function
  | Missing_symbol s -> Format.fprintf fmt "undefined symbol: %s" s
  | Signature_mismatch s -> Format.fprintf fmt "signature mismatch: %s" s
  | Layout_mismatch t -> Format.fprintf fmt "type layout mismatch: %s" t

let pp_surface fmt s =
  List.iter (fun sym -> Format.fprintf fmt "T %s %s@." sym.mangled sym.sig_digest) s.symbols;
  List.iter
    (fun l ->
      Format.fprintf fmt "L %s size=%d repr=%s%s@." l.type_name l.size l.repr
        (if l.opaque then " (opaque)" else ""))
    s.layouts
