(** ABI model: what "binary compatible" means in this system (§2.1).

    A compiled library exposes a {e surface}: mangled symbol names with
    signature digests, plus the layouts of its exported types. A type
    layout may be {e concrete} (size and field list fixed by the API —
    the C ABI case) or {e opaque} (the size and representation are the
    implementation's choice, like MPI's [MPI_Comm]: an [int] in MPICH,
    a struct pointer in Open MPI).

    A provider surface is compatible with what a consumer compiled
    against when it exports a {e superset} of the required symbols with
    equal signature digests, and all shared type layouts are identical
    — API compatibility is necessary but not sufficient (§2.1); two
    packages with the same headers but different opaque layouts are
    binary-incompatible.

    Surfaces are synthesized deterministically from a package's
    {e ABI family} and version, so mpich-family implementations
    (MPICH, MVAPICH, Cray-MPICH analogues) produce interchangeable
    surfaces while an openmpi-family build of the same virtual does
    not. *)

type layout = {
  type_name : string;
  opaque : bool;
  size : int;
  repr : string;  (** representation tag; layouts equal iff all fields equal *)
}

type symbol = {
  mangled : string;
  sig_digest : string;
}

type surface = {
  symbols : symbol list;  (** sorted by mangled name *)
  layouts : layout list;  (** sorted by type name *)
}

val synthesize :
  family:string -> interface_version:string -> ?extra_symbols:int -> unit -> surface
(** Deterministic surface for an ABI family at an interface version.
    Families differ in every symbol digest and in opaque layout reprs;
    the same family at the same interface version is identical
    regardless of which package synthesized it. [extra_symbols] adds
    family-private symbols (a superset still satisfies consumers of the
    base surface). *)

type incompatibility =
  | Missing_symbol of string
  | Signature_mismatch of string
  | Layout_mismatch of string

val check : provider:surface -> required:surface -> incompatibility list
(** Empty list = the provider can stand in for what the consumer was
    compiled against. *)

val compatible : provider:surface -> required:surface -> bool

val required_of : surface -> fraction:float -> surface
(** A consumer typically imports a subset of a provider's surface; this
    samples a deterministic fraction (by symbol-name hash) of it, with
    all layouts retained. *)

val mangle : family:string -> string -> string
(** Itanium-flavoured name mangling for synthetic symbols. *)

val pp_incompatibility : Format.formatter -> incompatibility -> unit

val pp_surface : Format.formatter -> surface -> unit
