(* The dependency-update scenario (2.2, 4): bump an ABI-compatible
   zlib under a deep stack without "rebuilding the world". A source
   package manager rebuilds every transitive dependent; splicing
   rebuilds only zlib and rewires the rest.

   $ dune exec examples/update_without_rebuild.exe *)

open Spec.Types

(* A deliberately deep stack: app -> libtop -> libmid -> libbase -> zlib,
   so the rebuild cascade has something to cascade through. *)
let repo =
  Pkg.Repo.of_packages
    Pkg.Package.
      [ make "zlib"
        |> version "1.3.1" |> version "1.2.13"
        (* zlib maintains ABI stability across the 1.x series and
           declares it: 1.3.1 can replace any installed 1.2/1.3. *)
        |> can_splice "zlib@1.2:1.3" ~when_:"@1.3.1";
        make "libbase" |> version "2.1.0" |> depends_on "zlib"
        |> depends_on "cmake" ~deptypes:dt_build;
        make "libmid" |> version "1.4.2" |> depends_on "libbase" |> depends_on "zlib";
        make "libtop" |> version "0.9.1" |> depends_on "libmid" |> depends_on "libbase";
        make "app" |> version "3.0.0" |> depends_on "libtop" |> depends_on "zlib";
        make "cmake" |> version "3.27.7" ]

let () =
  let vfs = Binary.Vfs.create () in
  let store = Binary.Store.create ~root:"/opt/spack" vfs in

  Format.printf "== 1. Install app with the old zlib ==@.";
  let old_spec =
    match Core.Concretizer.concretize_spec ~repo "app ^zlib@1.2.13" with
    | Ok o -> List.hd o.Core.Concretizer.solution.Core.Decode.specs
    | Error e -> failwith e
  in
  let first = Binary.Installer.install_exn store ~repo old_spec in
  Format.printf "%a@.install: %a@." Spec.Concrete.pp_tree old_spec
    Binary.Installer.pp_report first;

  Format.printf "@.== 2. CVE lands: we need zlib@1.3.1 everywhere ==@.";
  let options =
    { Core.Concretizer.default_options with
      Core.Concretizer.reuse = List.map (fun (r : Binary.Store.record) -> r.Binary.Store.spec)
          (Binary.Store.records store);
      splicing = true }
  in
  let spliced_outcome =
    match
      Core.Concretizer.concretize ~repo ~options
        [ Core.Encode.request_of_string "app ^zlib@1.3.1" ]
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  let sol = spliced_outcome.Core.Concretizer.solution in
  let new_spec = List.hd sol.Core.Decode.specs in
  Format.printf "%a@." Spec.Concrete.pp_tree new_spec;
  Format.printf "packages to compile: [%s]@."
    (String.concat "; " sol.Core.Decode.built);
  Format.printf "splice points: %d@." (List.length sol.Core.Decode.splices);

  let report = Binary.Installer.install_exn store ~repo new_spec in
  Format.printf "install: %a@." Binary.Installer.pp_report report;
  (match report.Binary.Installer.link_result with
  | Ok _ -> Format.printf "relinked stack loads cleanly@."
  | Error es ->
    List.iter (fun e -> Format.printf "LINK ERROR: %a@." Binary.Linker.pp_error e) es);

  Format.printf "@.== 3. The same update without splicing ==@.";
  let options_ns = { options with Core.Concretizer.splicing = false } in
  (match
     Core.Concretizer.concretize ~repo ~options:options_ns
       [ Core.Encode.request_of_string "app ^zlib@1.3.1" ]
   with
  | Ok o ->
    let b = o.Core.Concretizer.solution.Core.Decode.built in
    Format.printf "a pure source-based update rebuilds %d packages: [%s]@."
      (List.length b) (String.concat "; " b)
  | Error e -> Format.printf "ERR %s@." e);

  (* The paper's point, as numbers. *)
  let with_splice = List.length sol.Core.Decode.built in
  Format.printf
    "@.summary: splice rebuilds %d package(s); the cascade would rebuild the whole stack.@."
    with_splice
