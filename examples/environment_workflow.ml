(* Environments end to end: jointly concretize a small stack, pin it
   with a lockfile, carry the lockfile to a "new machine", reinstall
   bit-for-bit from the buildcache, and validate the result with the
   independent checker.

   $ dune exec examples/environment_workflow.exe *)


let repo =
  Pkg.Repo.of_packages
    Pkg.Package.
      [ make "simulation" |> version "5.1" |> depends_on "solver" |> depends_on "io-lib";
        make "analysis" |> version "2.2" |> depends_on "io-lib" |> depends_on "zlib@1.2";
        make "solver" |> version "3.0" |> depends_on "zlib" |> depends_on "openblas";
        make "io-lib" |> version "1.8" |> depends_on "zlib";
        make "openblas" |> version "0.3.24";
        make "zlib" |> version "1.3.1" |> version "1.2.13" ]

let section title = Format.printf "@.== %s ==@." title

let () =
  section "1. Build the environment: two apps, concretized jointly";
  let env =
    Core.Env.(create "campaign" |> Fun.flip add "simulation" |> Fun.flip add "analysis")
  in
  let env =
    match Core.Env.concretize ~repo env with Ok e -> e | Error e -> failwith e
  in
  print_string (Core.Env.status env);
  (* Joint solving: analysis pins zlib@1.2, so simulation's whole stack
     lands on the same zlib. *)
  List.iter
    (fun spec ->
      assert (
        Vers.Version.to_string (Spec.Concrete.node spec "zlib").Spec.Concrete.version
        = "1.2.13"))
    env.Core.Env.concrete;

  section "2. Install on the build machine and push a buildcache";
  let vfs = Binary.Vfs.create () in
  let farm = Binary.Store.create ~root:"/farm" vfs in
  let reports = Core.Env.install env farm ~repo () in
  List.iter
    (fun (root, r) -> Format.printf "%s: %a@." root Binary.Installer.pp_report r)
    reports;
  let cache = Binary.Buildcache.create ~name:"campaign-cache" in
  List.iter (fun s -> ignore (Binary.Errors.ok_exn (Binary.Buildcache.push cache farm s))) env.Core.Env.concrete;

  section "3. Write the lockfile";
  let lock_text = Sjson.to_string ~pretty:true (Core.Env.lockfile env) in
  Format.printf "lockfile: %d bytes, %d pinned specs@." (String.length lock_text)
    (List.length env.Core.Env.concrete);

  section "4. New machine: reinstall from the lockfile, binaries only";
  let env' = Core.Env.of_lockfile (Sjson.of_string lock_text) in
  assert (
    List.map Spec.Concrete.dag_hash env'.Core.Env.concrete
    = List.map Spec.Concrete.dag_hash env.Core.Env.concrete);
  let cluster = Binary.Store.create ~root:"/cluster" (Binary.Vfs.create ()) in
  let reports' = Core.Env.install env' cluster ~repo ~caches:[ cache ] () in
  List.iter
    (fun (root, (r : Binary.Installer.report)) ->
      Format.printf "%s: %a@." root Binary.Installer.pp_report r;
      assert (Binary.Installer.rebuild_count r = 0);
      match r.Binary.Installer.link_result with
      | Ok _ -> ()
      | Error _ -> failwith (root ^ ": link failed"))
    reports';

  section "5. Validate every installed spec with the independent checker";
  List.iter
    (fun spec ->
      match Core.Verify.check_solution ~repo spec with
      | [] -> Format.printf "%s: valid@." (Spec.Concrete.root spec)
      | vs ->
        List.iter (fun v -> Format.printf "%a@." Core.Verify.pp_violation v) vs;
        failwith "validation failed")
    env'.Core.Env.concrete;
  Format.printf "@.environment reproduced bit-for-bit from the lockfile.@."