(* Quickstart: define packages, concretize a spec, install it, run the
   simulated linker over the result.

   $ dune exec examples/quickstart.exe *)

open Spec.Types

(* The example package of Fig. 1, and its little universe. *)
let repo =
  Pkg.Repo.of_packages
    Pkg.Package.
      [ make "example"
        |> version "1.1.0"
        |> version "1.0.0"
        |> variant "bzip" ~default:(Bool true)
        |> depends_on "bzip2" ~when_:"+bzip"
        |> depends_on "zlib@1.2" ~when_:"@1.0.0"
        |> depends_on "zlib@1.3" ~when_:"@1.1.0"
        |> depends_on "mpi"
        |> can_splice "example@1.0.0" ~when_:"@1.1.0"
        |> can_splice "example-ng@2.3.2+compat" ~when_:"@1.1.0+bzip";
        make "example-ng" |> version "2.3.2" |> variant "compat" ~default:(Bool true);
        make "bzip2" |> version "1.0.8" |> variant "pic" ~default:(Bool true);
        make "zlib" |> version "1.3.1" |> version "1.2.13";
        make "mpich" ~abi_family:"mpich-abi"
        |> version "3.4.3" |> provides "mpi" |> depends_on "zlib";
        make "openmpi" ~abi_family:"ompi" |> version "4.1.5" |> provides "mpi" ]

let () =
  (* 1. Concretize an abstract spec (Table 1 syntax). *)
  let outcome =
    match Core.Concretizer.concretize_spec ~repo "example@1.1.0 ^zlib@1.3 ^mpich" with
    | Ok o -> o
    | Error e -> failwith e
  in
  let spec = List.hd outcome.Core.Concretizer.solution.Core.Decode.specs in
  Format.printf "Concretized:@.%a@." Spec.Concrete.pp_tree spec;

  (* 2. Install it into a store: everything builds from source here. *)
  let vfs = Binary.Vfs.create () in
  let store = Binary.Store.create ~root:"/opt/spack" vfs in
  let report = Binary.Installer.install_exn store ~repo spec in
  Format.printf "Install: %a@." Binary.Installer.pp_report report;

  (* 3. The spec is addressable by hash and satisfies its request. *)
  Format.printf "dag hash: %s@." (Chash.short (Spec.Concrete.dag_hash spec));
  assert (Spec.Concrete.satisfies spec (Spec.Parser.parse "example@1.1.0 ^zlib@1.3"));

  (* 4. Reinstalling is pure reuse. *)
  let again = Binary.Installer.install_exn store ~repo spec in
  assert (Binary.Installer.rebuild_count again = 0);
  Format.printf "Reinstall: %a@." Binary.Installer.pp_report again
