(* The paper's motivating scenario (1): deploy an MPI stack, built
   against the general MPICH on a build server, onto an "HPE Cray"
   cluster whose vendor MPI (cray-mpich) exists only there — without
   rebuilding anything.

   $ dune exec examples/cray_deploy.exe *)

open Spec.Types

let repo =
  Pkg.Repo.of_packages
    Pkg.Package.
      [ make "trilinos"
        |> version "14.4.0"
        |> variant "shared" ~default:(Bool true)
        |> depends_on "mpi"
        |> depends_on "openblas"
        |> depends_on "zlib"
        |> depends_on "cmake" ~deptypes:dt_build;
        make "openblas" |> version "0.3.24";
        make "zlib" |> version "1.3.1";
        make "cmake" |> version "3.27.7";
        make "mpich" ~abi_family:"mpich-abi"
        |> version "3.4.3" |> provides "mpi" |> depends_on "zlib";
        (* Cray MPICH: same ABI family as MPICH (the vendor keeps the
           mpich ABI), declared spliceable by its own developers
           (5.2.1: the replacement declares what it can replace). *)
        make "cray-mpich" ~abi_family:"mpich-abi"
        |> version "8.1.27" |> provides "mpi" |> depends_on "zlib"
        |> can_splice "mpich@3.4.3" ~when_:"@8.1" ]

let section title = Format.printf "@.== %s ==@." title

let () =
  let vfs = Binary.Vfs.create () in

  section "1. Build server: build trilinos ^mpich@3.4.3, push to a buildcache";
  let farm = Binary.Store.create ~root:"/buildfarm" vfs in
  let built =
    match Core.Concretizer.concretize_spec ~repo "trilinos ^mpich@3.4.3" with
    | Ok o -> List.hd o.Core.Concretizer.solution.Core.Decode.specs
    | Error e -> failwith e
  in
  ignore (Binary.Errors.ok_exn (Binary.Builder.build_all farm ~repo built));
  let cache = Binary.Buildcache.create ~name:"public" in
  ignore (Binary.Errors.ok_exn (Binary.Buildcache.push cache farm built));
  Format.printf "%a" Spec.Concrete.pp_tree built;
  Format.printf "cache entries: %d@." (Binary.Buildcache.size cache);

  section "2. Cray cluster: vendor cray-mpich is installed locally (only here)";
  let cluster = Binary.Store.create ~root:"/opt/cray" vfs in
  let cray =
    match Core.Concretizer.concretize_spec ~repo "cray-mpich" with
    | Ok o -> List.hd o.Core.Concretizer.solution.Core.Decode.specs
    | Error e -> failwith e
  in
  ignore (Binary.Errors.ok_exn (Binary.Builder.build_all cluster ~repo cray));
  Format.printf "%a" Spec.Concrete.pp_tree cray;

  section "3. Concretize trilinos ^cray-mpich with splicing, reusing the cache";
  let options =
    { Core.Concretizer.default_options with
      Core.Concretizer.reuse = Binary.Buildcache.specs cache @ [ cray ];
      splicing = true }
  in
  let outcome =
    match
      Core.Concretizer.concretize ~repo ~options
        [ Core.Encode.request_of_string "trilinos ^cray-mpich" ]
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  let sol = outcome.Core.Concretizer.solution in
  let spliced = List.hd sol.Core.Decode.specs in
  Format.printf "%a" Spec.Concrete.pp_tree spliced;
  List.iter
    (fun (s : Core.Decode.splice_record) ->
      Format.printf "splice: %s's %s -> %s@." s.Core.Decode.sp_parent
        s.Core.Decode.sp_old s.Core.Decode.sp_new)
    sol.Core.Decode.splices;
  assert (Core.Decode.is_spliced_solution sol);
  assert (sol.Core.Decode.built = []);

  section "4. Install on the cluster: rewiring only, zero compiles";
  let report = Binary.Installer.install_exn cluster ~repo ~caches:[ cache ] spliced in
  Format.printf "%a@." Binary.Installer.pp_report report;
  assert (Binary.Installer.rebuild_count report = 0);
  (match report.Binary.Installer.link_result with
  | Ok n -> Format.printf "dynamic linker: resolved %d objects, ABI clean@." n
  | Error es ->
    List.iter (fun e -> Format.printf "LINK ERROR: %a@." Binary.Linker.pp_error e) es;
    failwith "spliced install failed to link");

  section "5. Counterfactual: the same deployment without splicing";
  let options_ns = { options with Core.Concretizer.splicing = false } in
  (match
     Core.Concretizer.concretize ~repo ~options:options_ns
       [ Core.Encode.request_of_string "trilinos ^cray-mpich" ]
   with
  | Ok o ->
    let b = o.Core.Concretizer.solution.Core.Decode.built in
    Format.printf "without splicing, %d packages would rebuild: %s@."
      (List.length b) (String.concat ", " b)
  | Error e -> Format.printf "without splicing: %s@." e)
