(* Fig. 2, replayed exactly: two pre-compiled specs
       T ^H ^Z@1.0      (rectangular nodes)
       H' ^S ^Z@1.1     (rounded nodes)
   A request for T ^H' is satisfied by a TRANSITIVE splice (shared Z
   tie-breaks to the spliced-in side, 1.1); a request for
   T ^H' ^Z@1.0 needs the INTRANSITIVE form (Z restored to 1.0).
   Build provenance (dashed lines in the figure) is the build spec.

   $ dune exec examples/splice_anatomy.exe *)

open Spec.Types

let v = Vers.Version.of_string

let node ?build_hash name version =
  { Spec.Concrete.name;
    version = v version;
    variants = Smap.empty;
    os = "linux";
    target = "x86_64";
    build_hash }

(* T ^H ^Z@1.0 *)
let t_spec =
  Spec.Concrete.create ~root:"t"
    ~nodes:[ node "t" "1.0"; node "h" "1.0"; node "z" "1.0" ]
    ~edges:[ ("t", "h", dt_link); ("t", "z", dt_link); ("h", "z", dt_link) ]
    ()

(* H' ^S ^Z@1.1 — H' is a different implementation of H's interface,
   modeled as package h-prime. *)
let h'_spec =
  Spec.Concrete.create ~root:"h-prime"
    ~nodes:[ node "h-prime" "2.0"; node "s" "1.0"; node "z" "1.1" ]
    ~edges:[ ("h-prime", "s", dt_link); ("h-prime", "z", dt_link) ]
    ()

let show title spec =
  Format.printf "@.-- %s --@.%a" title Spec.Concrete.pp_tree spec

let () =
  show "T ^H ^Z@1.0 (already built)" t_spec;
  show "H' ^S ^Z@1.1 (already built)" h'_spec;

  (* Transitive: satisfies T ^H'. Shared Z goes to 1.1 (blue in Fig 2). *)
  let transitive =
    Core.Splice.splice ~replace:"h" ~target:t_spec ~replacement:h'_spec
      ~transitive:true ()
  in
  show "transitive splice of H' into T  =>  T ^H' ^Z@1.1" transitive;
  assert ((Spec.Concrete.node transitive "z").Spec.Concrete.version = v "1.1");
  assert (Spec.Concrete.is_spliced transitive);
  (* T was relinked: it carries the hash it was built as. *)
  assert ((Spec.Concrete.node transitive "t").Spec.Concrete.build_hash
          = Some (Spec.Concrete.node_hash t_spec "t"));

  (* Intransitive: satisfies T ^H' ^Z@1.0 — splice Z@1.0 back in (red
     in Fig 2): H' now points at Z@1.0 and T's Z is restored. *)
  let z10 = Spec.Concrete.subdag t_spec "z" in
  let intransitive =
    Core.Splice.splice ~replace:"z" ~target:transitive ~replacement:z10
      ~transitive:true ()
  in
  show "then splicing Z@1.0 back  =>  T ^H' ^Z@1.0 (intransitive)" intransitive;
  assert ((Spec.Concrete.node intransitive "z").Spec.Concrete.version = v "1.0");
  (* H' is now relinked too: built against Z@1.1, deployed against Z@1.0. *)
  assert ((Spec.Concrete.node intransitive "h-prime").Spec.Concrete.build_hash
          = Some (Spec.Concrete.dag_hash h'_spec));

  (* The one-step intransitive splice produces the same DAG. *)
  let direct =
    Core.Splice.splice ~replace:"h" ~target:t_spec ~replacement:h'_spec
      ~transitive:false ()
  in
  show "one-step intransitive splice of H' into T" direct;
  assert (Spec.Concrete.dag_hash direct = Spec.Concrete.dag_hash intransitive);

  (* Provenance chain: the build spec of the re-spliced spec is the
     transitively spliced one, whose build spec is the original T. *)
  (match Spec.Concrete.build_spec intransitive with
  | Some bs -> assert (Spec.Concrete.dag_hash bs = Spec.Concrete.dag_hash transitive)
  | None -> assert false);
  Format.printf "@.all Fig. 2 shapes verified.@."
